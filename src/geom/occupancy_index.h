#ifndef LSQCA_GEOM_OCCUPANCY_INDEX_H
#define LSQCA_GEOM_OCCUPANCY_INDEX_H

/**
 * @file
 * Incrementally maintained empty-cell index for an occupancy grid.
 *
 * The bank cost models (src/arch) query nearest-empty cells on every
 * load/store/seek; a naive scan is O(rows * cols) per query and
 * dominates point/line simulate(). This index keeps one free-column
 * bitmask per row plus a bitmask of rows that still have an empty
 * cell, so occupy/vacate are two bit flips (no allocation — the
 * makeRoomAt hole walk relocates a qubit per step and must stay cheap)
 * and nearest-empty queries are word scans over the handful of
 * candidate rows instead of full-grid sweeps.
 *
 * The query results are bit-identical to the row-major reference scan,
 * including tie-breaking (see nearestEmpty below); the differential
 * harness in tests/arch/bank_fuzz_test.cpp pins this against the
 * scan-based reference oracles.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/coord.h"

namespace lsqca {

/**
 * Per-row free-column bitmasks + the bitmask of non-full rows.
 *
 * All cells start empty; OccupancyGrid forwards every occupy/vacate
 * transition. Queries never mutate.
 */
class OccupancyIndex
{
  public:
    /** All cells of a rows x cols grid start empty. @pre rows, cols > 0 */
    OccupancyIndex(std::int32_t rows, std::int32_t cols);

    /** Cell @p c transitions empty -> occupied. @pre c is empty */
    void onOccupy(const Coord &c);

    /** Cell @p c transitions occupied -> empty. @pre c is occupied */
    void onVacate(const Coord &c);

    /** Whether the index records @p c as empty (for consistency checks). */
    bool isEmpty(const Coord &c) const;

    /**
     * Empty cell minimizing manhattan distance to @p target; ties break
     * toward the smaller row, then the smaller column — exactly the
     * order a row-major scan with a strict "closer than best" test
     * visits candidates. nullopt when the grid is full.
     */
    std::optional<Coord> nearestEmpty(const Coord &target) const;

    /**
     * Empty cell in row @p row minimizing |col - target_col|; ties break
     * toward the smaller column. nullopt when the row is full.
     * @pre 0 <= row < rows
     */
    std::optional<Coord> nearestEmptyInRow(std::int32_t row,
                                           std::int32_t target_col) const;

    /** All empty cells, row-major order. */
    std::vector<Coord> emptyCells() const;

  private:
    /**
     * Best free column in @p row for @p target_col under the scan
     * tie-break (smaller column wins equal distance), or -1 when the
     * row is full.
     */
    std::int32_t bestColInRow(std::int32_t row,
                              std::int32_t target_col) const;

    /** First free column at or after @p from in @p row, or -1. */
    std::int32_t nextFreeCol(const std::uint64_t *row,
                             std::int32_t from) const;

    /** Last free column at or before @p from in @p row, or -1. */
    std::int32_t prevFreeCol(const std::uint64_t *row,
                             std::int32_t from) const;

    const std::uint64_t *
    rowBits(std::int32_t row) const
    {
        return freeBits_.data() +
               static_cast<std::size_t>(row) *
                   static_cast<std::size_t>(wordsPerRow_);
    }

    std::int32_t rows_;
    std::int32_t cols_;
    std::int32_t wordsPerRow_;
    /** rows x wordsPerRow words; bit c of a row's words = column c free. */
    std::vector<std::uint64_t> freeBits_;
    /** Bit r set when row r has at least one free column. */
    std::vector<std::uint64_t> rowsWithEmpty_;
    std::vector<std::int32_t> freeCountByRow_;
};

} // namespace lsqca

#endif // LSQCA_GEOM_OCCUPANCY_INDEX_H
