#ifndef LSQCA_API_PAPER_SPECS_H
#define LSQCA_API_PAPER_SPECS_H

/**
 * @file
 * SweepSpec builders for the paper's headline experiments. The figure
 * benches are thin wrappers over these (table rendering aside), and
 * `lsqca spec <name>` dumps them as JSON — specs/fig13.json is the
 * fig13 builder's output with its `name` changed to "fig13_cpi" (so
 * the CLI's BENCH file doesn't collide with the bench's), pinned
 * job-for-job against the builder by tests/api/spec_test.cpp. The CLI
 * and the compiled bench run the same experiment.
 *
 * @p full mirrors the benches' --full flag: steady-state prefixes
 * (multiplier/square_root/SELECT) are dropped and SELECT instances are
 * synthesized to completion.
 */

#include "api/spec.h"

namespace lsqca::api::specs {

/** Fig. 13: CPI, 7 benchmarks x 6 machines x 1/2/4 factories. */
SweepSpec fig13(bool full = false);

/** Fig. 14: hybrid density/overhead trade-off, f = 0..1 step 0.05. */
SweepSpec fig14(bool full = false);

/**
 * Fig. 14 under the sampled estimator (docs/SAMPLING.md): the same
 * 1785-job sweep with systematic sampling + functional warming, so the
 * whole figure reproduces in a fraction of the exact wall-clock with
 * cpi ± ci95 per entry. The CI sampling gate runs it and checks every
 * exact cpi lies inside the sampled interval.
 */
SweepSpec fig14Sampled(bool full = false);

/** Fig. 15: SELECT width scaling with hot-register hybrid layouts. */
SweepSpec fig15(bool full = false);

/** Sec. V ablations (locality store, in-memory ops, buffers, ...). */
SweepSpec ablation(bool full = false);

/** CI-sized smoke sweep (miniature programs, seconds to run). */
SweepSpec smoke();

/**
 * Builder lookup by name
 * (fig13|fig14|fig14_sampled|fig15|ablation|smoke).
 */
SweepSpec byName(const std::string &name, bool full = false);

} // namespace lsqca::api::specs

#endif // LSQCA_API_PAPER_SPECS_H
