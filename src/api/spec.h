#ifndef LSQCA_API_SPEC_H
#define LSQCA_API_SPEC_H

/**
 * @file
 * Declarative sweep specifications: an experiment as data.
 *
 * A SweepSpec describes a sweep as an ordered list of axes whose
 * cartesian product (first axis outermost) expands deterministically
 * into the job vector the SweepEngine runs. Exactly one axis enumerates
 * benchmarks (registry name + parameter object + optional instruction
 * prefix); the others patch the architecture configuration — either
 * explicit point lists (partial ArchConfig objects) or scalar grid
 * shorthand (`{"axis": "factories", "values": [1, 2, 4]}`). Later axes
 * override earlier ones field-by-field, so a spec composes like the
 * nested loops it replaces.
 *
 * Job names come from a template (`"{benchmark}/{machine}/f{factories}"`)
 * whose placeholders are axis labels; each axis value contributes a
 * fragment (explicit `"name"`, or a derived default). `{arch}` expands
 * to the final merged config's label().
 *
 * Sharding: a contiguous `i/N` slice of the expanded vector. Shards
 * partition the job list exactly, so the merged BENCH document equals
 * the unsharded one (byte-identical under --no-timing).
 *
 * JSON schema: `lsqca-spec-v1`, documented in docs/SPEC.md with
 * runnable examples under specs/. `lsqca-spec-v2` is v1 plus an
 * optional top-level `"estimator"` block (docs/SAMPLING.md); v1
 * documents parse unchanged, and toJson() only emits v2 when the
 * estimator is non-exact, so existing specs round-trip byte-for-byte.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/job_cache.h"
#include "api/registry.h"
#include "common/json.h"
#include "sim/simulator.h"
#include "sweep/sweep.h"
#include "translate/translate.h"

namespace lsqca::api {

/** One cell of one axis: a partial assignment merged into a point. */
struct AxisValue
{
    /** Name fragment for the template ("" = derived default). */
    std::string name;
    /** Benchmark registry name ("" on non-benchmark axes). */
    std::string bench;
    /** Benchmark parameters (null = defaults). */
    Json params;
    /** Instruction prefix override (maxInstructions). */
    std::optional<std::int64_t> prefix;
    /**
     * Partial ArchConfig patch (null = none). `"hybrid_fraction"` may
     * be the string "hot": it resolves to the benchmark's hot-set
     * fraction at expansion time (Fig. 15's pinned registers).
     */
    Json arch;
    /** Partial TranslateOptions patch (null = none). */
    Json translate;
    /** Set when parsed from scalar grid shorthand (round-trips). */
    Json scalar;
};

/** An ordered sweep dimension. */
struct SweepAxis
{
    /** Unique label; the template placeholder `{label}`. */
    std::string label;
    std::vector<AxisValue> values;
};

/** A declarative sweep: benchmarks x architecture grid x options. */
struct SweepSpec
{
    /** Sweep name; BENCH output lands in BENCH_<name>.json. */
    std::string name;
    /** Job-name template ("" = join all fragments with '/'). */
    std::string nameTemplate;
    /** Partial ArchConfig applied to every point before axis patches. */
    Json archBase;
    /** Record memory/magic traces on every job. */
    bool recordTrace = false;
    /**
     * Collect per-opcode latency breakdowns on every job; the sweep's
     * BENCH document then uses schema `lsqca-bench-v2` with a
     * "breakdown" array per entry (v1 otherwise, byte-identical to
     * pre-breakdown output).
     */
    bool recordBreakdown = false;
    /**
     * Estimator applied to every job (docs/SAMPLING.md). Exact by
     * default; a sampled estimator makes this a `lsqca-spec-v2`
     * document and its BENCH entries carry cpi_ci95 / sampling_error
     * / sampled_units.
     */
    estimate::EstimatorOptions estimator;
    /** Outermost axis first. */
    std::vector<SweepAxis> axes;

    /**
     * Parse a lsqca-spec-v1 or lsqca-spec-v2 document (strict; the
     * "estimator" key is v2-only). @throws ConfigError.
     */
    static SweepSpec fromJson(const Json &doc);

    /** fromJson(Json::load(path)). @throws ConfigError. */
    static SweepSpec load(const std::string &path);

    /**
     * Serialize back to a spec document: v2 with an "estimator" block
     * when the estimator is non-exact, byte-identical v1 otherwise.
     */
    Json toJson() const;
};

/** One expanded sweep point, before program resolution. */
struct ExpandedJob
{
    std::string name;
    std::string bench;
    /** Canonical benchmark parameters (defaults filled in). */
    Json params;
    TranslateOptions translate;
    SimOptions options;
};

/** A contiguous `index/count` slice of an expanded job vector. */
struct ShardRange
{
    std::int32_t index = 0;
    std::int32_t count = 1;

    bool isWhole() const { return count <= 1; }

    /** Parse "i/N" with 0 <= i < N. @throws ConfigError. */
    static ShardRange parse(const std::string &text);

    /** [begin, end) of this shard over @p total jobs. */
    std::pair<std::size_t, std::size_t> bounds(std::size_t total) const;
};

/**
 * Parse a `--threads` value: an integer worker count in [0, 4096]
 * (0 = hardware concurrency). Shared by every sweep front end so the
 * flag can't drift between the CLI and the benches.
 * @throws ConfigError.
 */
std::int32_t parseThreadCount(const std::string &text);

/**
 * Parse a `--timeout-seconds` value: a number of wall seconds in
 * (0, 1e9]. @throws ConfigError.
 */
double parseTimeoutSeconds(const std::string &text);

/**
 * Parse a `--seed-check` value: a 16-hex-digit shard fingerprint as
 * produced by shardFingerprint(). @throws ConfigError.
 */
std::string parseFingerprintArg(const std::string &text);

/**
 * Simulator behavior epoch, folded into every shard fingerprint.
 * Bump it whenever a change alters the metrics a sweep produces
 * (cost models, kernels, translation) so shared result caches from
 * older builds miss instead of silently serving stale numbers.
 */
inline constexpr std::int64_t kEngineEpoch = 1;

/** Exit code of a worker whose `--timeout-seconds` budget expired. */
inline constexpr int kTimeoutExitCode = 124;

/** Exit code of the test-only `--die-after` crash hook. */
inline constexpr int kDieAfterExitCode = 75;

/**
 * Canonical content manifest of one shard: the bench schema version,
 * the shard slice geometry, and every job in the slice with its fully
 * canonicalized parameters/options (schema `lsqca-shard-v1`). Two
 * shards with equal manifests produce byte-identical BENCH documents
 * under --no-timing, which is what makes the manifest's hash a safe
 * content-address for the result cache.
 */
Json shardManifest(const SweepSpec &spec,
                   const std::vector<ExpandedJob> &jobs,
                   const ShardRange &shard, bool noTiming);

/** contentFingerprint() of shardManifest().dump(0): the cache key. */
std::string shardFingerprint(const SweepSpec &spec,
                             const std::vector<ExpandedJob> &jobs,
                             const ShardRange &shard, bool noTiming);

/** shardFingerprint() for every shard of an `N`-way partition. */
std::vector<std::string>
shardFingerprints(const SweepSpec &spec,
                  const std::vector<ExpandedJob> &jobs,
                  std::int32_t shardCount, bool noTiming);

/**
 * Canonical content manifest of ONE job (schema `lsqca-job-v1`): the
 * bench schema version, the engine epoch, the --no-timing flag, and
 * the job's fully canonicalized benchmark params, translate options,
 * and sim/estimator options. Deliberately excludes the sweep name and
 * any shard geometry, so the same grid point hits the same job-cache
 * entry across campaigns, shard counts, and spec edits that merely
 * add neighbours — the incremental-recompute property shard
 * fingerprints cannot provide. Doubles as the provenance record
 * stored beside each cached entry.
 */
Json jobManifest(const SweepSpec &spec, const ExpandedJob &job,
                 bool noTiming);

/** contentFingerprint() of jobManifest().dump(0): the job-cache key. */
std::string jobFingerprint(const SweepSpec &spec, const ExpandedJob &job,
                           bool noTiming);

/** jobFingerprint() for every job, aligned with @p jobs. */
std::vector<std::string>
jobFingerprints(const SweepSpec &spec, const std::vector<ExpandedJob> &jobs,
                bool noTiming);

/**
 * Expand the spec's cartesian product into the full job vector, in
 * deterministic order (first axis outermost). Validates benchmark
 * names/params against @p registry and resolves "hot" hybrid
 * fractions; programs are not synthesized.
 */
std::vector<ExpandedJob> expandSpec(const SweepSpec &spec,
                                    const BenchmarkRegistry &registry);

/** Options for runSpec. */
struct RunSpecOptions
{
    /** Sweep workers; 0 = hardware concurrency. */
    std::int32_t threads = 0;
    /** Where BENCH_<name>.json lands. */
    std::string outDir = "bench/out";
    /** Contiguous slice to run (whole sweep by default). */
    ShardRange shard;
    /**
     * Zero wall-clock fields and the thread count in the BENCH
     * document, making output deterministic (shard-merge equals the
     * unsharded run byte-for-byte).
     */
    bool noTiming = false;
    /** Write BENCH_<name>.json (and log a summary line to stderr). */
    bool writeJson = true;
    /**
     * Abort the process (exit kTimeoutExitCode) when the run exceeds
     * this many wall seconds (0 = no limit). Covers synthesis,
     * simulation, and output; the orchestrator passes it through to
     * workers so a wedged shard self-terminates.
     */
    double timeoutSeconds = 0.0;
    /**
     * When non-empty: the shard fingerprint this run is expected to
     * expand to; a mismatch throws ConfigError before any simulation.
     * The orchestrator passes it to workers so a spec or registry that
     * changed after the campaign was queued fails fast instead of
     * poisoning the merge.
     */
    std::string seedCheck;
    /**
     * Test-only crash hook: simulate the first N jobs of the slice,
     * then exit kDieAfterExitCode without writing output (-1 = off).
     * Lets tests kill a worker mid-shard deterministically.
     */
    std::int64_t dieAfter = -1;
    /**
     * Run every job with the exact estimator regardless of the spec's
     * estimator block. Applied to the expanded jobs *before* the
     * seed-check fingerprint comparison, so a forced-exact shard
     * expands to the exact slice's fingerprint — this is how the
     * orchestrator's CI escalation reruns a sampled shard (`lsqca run
     * --force-exact`, docs/SAMPLING.md).
     */
    bool forceExact = false;
    /**
     * Optional observability registry handed to the sweep engine
     * (must outlive the call); `lsqca run --metrics FILE` uses it to
     * snapshot sweep/pool instruments after the run. Null (the
     * default) keeps the run instrumentation-free (docs/METRICS.md).
     */
    metrics::Registry *metrics = nullptr;
    /**
     * Optional job-granularity result cache (must outlive the call).
     * When attached, each job in the slice is looked up by its
     * jobFingerprint() before program resolution: hits splice the
     * cached BENCH entry into the document (the job is neither
     * synthesized nor simulated), misses run normally and store their
     * entry plus provenance afterwards. Null (the default) keeps
     * runSpec's behaviour — and output bytes — exactly as before.
     */
    JobCacheClient *jobCache = nullptr;
};

/** Outcome of runSpec: the slice run, its results, and the report. */
struct SpecRun
{
    /** The expanded jobs of the slice (cached AND computed). */
    std::vector<ExpandedJob> expanded;
    /**
     * Jobs handed to the engine (programs owned by the registry).
     * With a job cache attached this holds only the *computed* jobs;
     * report.results stays aligned with it.
     */
    std::vector<SweepJob> jobs;
    SweepReport report;
    /** The BENCH document (carries shard info when sharded). */
    Json document;
    /** Where the document landed ("" when writeJson was off). */
    std::string jsonPath;
    /** Slice jobs served from the job cache (0 without a cache). */
    std::int64_t jobCacheHits = 0;
    /** Slice jobs actually simulated. */
    std::int64_t jobsComputed = 0;
};

/**
 * The single entry point every sweep goes through: expand, slice,
 * resolve programs via @p registry (memoized translation), fan out
 * over the SweepEngine, and build/write the BENCH document.
 */
SpecRun runSpec(const SweepSpec &spec, BenchmarkRegistry &registry,
                const RunSpecOptions &options = {});

/**
 * Merge shard BENCH documents back into the unsharded document: shard
 * slices are validated to partition the sweep (every index 0..N-1
 * exactly once), entries concatenate in shard order, wall-clock sums,
 * and the shard marker is dropped. Documents without shard markers
 * concatenate in argument order. Duplicate entry names are rejected
 * with an error naming both positions (@p labels, when given, must
 * parallel @p docs and supplies the source name per document —
 * typically its file path). Accepts `lsqca-bench-v1` and
 * `lsqca-bench-v2` documents; all inputs must share one schema, which
 * the merged document keeps.
 */
Json mergeBenchReports(const std::vector<Json> &docs,
                       const std::vector<std::string> &labels = {});

} // namespace lsqca::api

#endif // LSQCA_API_SPEC_H
