#ifndef LSQCA_API_JOB_CACHE_H
#define LSQCA_API_JOB_CACHE_H

/**
 * @file
 * The job-granularity cache seam between runSpec and the service
 * layer's content-addressed store.
 *
 * The shard-level cache (service::ResultCache) keys whole BENCH shard
 * documents by slice geometry, so editing one grid point invalidates
 * every shard. The job cache keys the *per-job* BENCH entry by
 * api::jobFingerprint — no sweep name, no shard geometry — so a
 * resubmit after adding one grid point recomputes one job and splices
 * the rest. runSpec consumes this interface; src/service/cache.*
 * implements it over the cache directory (the dependency arrow stays
 * service → api).
 *
 * Contract: fetchEntry returns the exact Json entry previously passed
 * to storeEntry for the same fingerprint (or a null Json on a miss).
 * Because the Json layer round-trips byte-exactly, a document spliced
 * from cached entries is byte-identical to a fresh simulation.
 */

#include <string>

#include "common/json.h"

namespace lsqca::api {

class JobCacheClient
{
  public:
    virtual ~JobCacheClient() = default;

    /** The cached BENCH entry for @p fingerprint, or null on a miss. */
    virtual Json fetchEntry(const std::string &fingerprint) = 0;

    /**
     * Store a freshly computed BENCH @p entry under @p fingerprint.
     * @p provenance is the canonical job manifest the fingerprint was
     * derived from (api::jobManifest) — persisted beside the entry so
     * a cache hit can always be traced back to the exact benchmark
     * params, lowered-program identity, arch config, and
     * sim/estimator options that produced it.
     */
    virtual void storeEntry(const std::string &fingerprint,
                            const Json &entry, const Json &provenance) = 0;
};

} // namespace lsqca::api

#endif // LSQCA_API_JOB_CACHE_H
