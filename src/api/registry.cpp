#include "api/registry.h"

#include <limits>

#include "api/json_reader.h"
#include "circuit/lowering.h"
#include "common/error.h"
#include "synth/benchmarks.h"

namespace lsqca::api {
namespace {

/** Treat a null params value as the empty object. */
Json
paramsOrEmpty(const Json &params)
{
    if (params.isNull())
        return Json::object();
    LSQCA_REQUIRE(params.isObject(),
                  "benchmark params must be a JSON object");
    return params;
}

constexpr std::int64_t kMaxInt32 =
    std::numeric_limits<std::int32_t>::max();

BenchmarkEntry
adderEntry()
{
    BenchmarkEntry entry;
    entry.name = "adder";
    entry.summary = "VBE ripple-carry adder (paper: 433 qubits)";
    entry.canonicalize = [](const Json &params) {
        std::int32_t width = 144;
        const Json given = paramsOrEmpty(params);
        ObjectReader reader(given, "adder params");
        reader.readInt32("width", width, 1, kMaxInt32);
        reader.finish();
        return Json::object().set("width", width);
    };
    entry.synthesize = [](const Json &canonical) {
        return makeAdder(
            static_cast<std::int32_t>(canonical.at("width").asInt()));
    };
    return entry;
}

BenchmarkEntry
bvEntry()
{
    BenchmarkEntry entry;
    entry.name = "bv";
    entry.summary = "Bernstein-Vazirani (paper: 280 qubits)";
    entry.canonicalize = [](const Json &params) {
        std::int32_t qubits = 280;
        std::int64_t secret = -1; // all-ones mask
        const Json given = paramsOrEmpty(params);
        ObjectReader reader(given, "bv params");
        reader.readInt32("num_qubits", qubits, 2, kMaxInt32);
        reader.readInt64("secret", secret);
        reader.finish();
        return Json::object()
            .set("num_qubits", qubits)
            .set("secret", secret);
    };
    entry.synthesize = [](const Json &canonical) {
        return makeBernsteinVazirani(
            static_cast<std::int32_t>(
                canonical.at("num_qubits").asInt()),
            static_cast<std::uint64_t>(canonical.at("secret").asInt()));
    };
    return entry;
}

BenchmarkEntry
sizedEntry(const char *name, const char *summary, std::int32_t qubits,
           Circuit (*make)(std::int32_t))
{
    BenchmarkEntry entry;
    entry.name = name;
    entry.summary = summary;
    const std::string what = std::string(name) + " params";
    entry.canonicalize = [qubits, what](const Json &params) {
        std::int32_t n = qubits;
        const Json given = paramsOrEmpty(params);
        ObjectReader reader(given, what);
        reader.readInt32("num_qubits", n, 2, kMaxInt32);
        reader.finish();
        return Json::object().set("num_qubits", n);
    };
    entry.synthesize = [make](const Json &canonical) {
        return make(static_cast<std::int32_t>(
            canonical.at("num_qubits").asInt()));
    };
    return entry;
}

BenchmarkEntry
multiplierEntry()
{
    BenchmarkEntry entry;
    entry.name = "multiplier";
    entry.summary = "shift-add multiplier (paper: 400 qubits)";
    entry.canonicalize = [](const Json &params) {
        MultiplierParams p;
        const Json given = paramsOrEmpty(params);
        ObjectReader reader(given, "multiplier params");
        reader.readInt32("width_a", p.widthA, 1, kMaxInt32);
        reader.readInt32("width_b", p.widthB, 1, kMaxInt32);
        reader.finish();
        return Json::object()
            .set("width_a", p.widthA)
            .set("width_b", p.widthB);
    };
    entry.synthesize = [](const Json &canonical) {
        MultiplierParams p;
        p.widthA = static_cast<std::int32_t>(
            canonical.at("width_a").asInt());
        p.widthB = static_cast<std::int32_t>(
            canonical.at("width_b").asInt());
        return makeMultiplier(p);
    };
    return entry;
}

BenchmarkEntry
squareRootEntry()
{
    BenchmarkEntry entry;
    entry.name = "square_root";
    entry.summary = "Grover square-root search (paper: 60 qubits)";
    entry.canonicalize = [](const Json &params) {
        SquareRootParams p;
        std::int64_t target = static_cast<std::int64_t>(p.target);
        const Json given = paramsOrEmpty(params);
        ObjectReader reader(given, "square_root params");
        reader.readInt32("width", p.width, 2, kMaxInt32);
        reader.readInt64("target", target, 0,
                         std::numeric_limits<std::int64_t>::max());
        reader.readInt32("iterations", p.iterations, 1, kMaxInt32);
        reader.finish();
        return Json::object()
            .set("width", p.width)
            .set("target", target)
            .set("iterations", p.iterations);
    };
    entry.synthesize = [](const Json &canonical) {
        SquareRootParams p;
        p.width =
            static_cast<std::int32_t>(canonical.at("width").asInt());
        p.target =
            static_cast<std::uint64_t>(canonical.at("target").asInt());
        p.iterations = static_cast<std::int32_t>(
            canonical.at("iterations").asInt());
        return makeSquareRoot(p);
    };
    return entry;
}

BenchmarkEntry
selectEntry()
{
    BenchmarkEntry entry;
    entry.name = "select";
    entry.summary =
        "SELECT for the 2-D Heisenberg model (paper: width 11)";
    entry.canonicalize = [](const Json &params) {
        SelectParams p;
        const Json given = paramsOrEmpty(params);
        ObjectReader reader(given, "select params");
        reader.readInt32("width", p.width, 2, kMaxInt32);
        reader.readInt64("max_terms", p.maxTerms, 0,
                         std::numeric_limits<std::int64_t>::max());
        reader.readInt32("control_copies", p.controlCopies, 1,
                         kMaxInt32);
        reader.finish();
        return Json::object()
            .set("width", p.width)
            .set("max_terms", p.maxTerms)
            .set("control_copies", p.controlCopies);
    };
    entry.synthesize = [](const Json &canonical) {
        SelectParams p;
        p.width =
            static_cast<std::int32_t>(canonical.at("width").asInt());
        p.maxTerms = canonical.at("max_terms").asInt();
        p.controlCopies = static_cast<std::int32_t>(
            canonical.at("control_copies").asInt());
        return makeSelect(p);
    };
    entry.hotFraction = [](const Json &canonical) {
        return selectHotFraction(static_cast<std::int32_t>(
            canonical.at("width").asInt()));
    };
    return entry;
}

} // namespace

void
BenchmarkRegistry::add(BenchmarkEntry entry)
{
    LSQCA_REQUIRE(!entry.name.empty(), "benchmark name must be set");
    LSQCA_REQUIRE(entry.canonicalize && entry.synthesize,
                  "benchmark \"" + entry.name +
                      "\" needs canonicalize and synthesize functions");
    for (const auto &existing : entries_)
        LSQCA_REQUIRE(existing.name != entry.name,
                      "duplicate benchmark \"" + entry.name + "\"");
    entries_.push_back(std::move(entry));
}

BenchmarkRegistry
BenchmarkRegistry::paper()
{
    BenchmarkRegistry registry;
    registry.add(adderEntry());
    registry.add(bvEntry());
    registry.add(sizedEntry("cat", "cat-state CX chain (paper: 260 qubits)",
                            260, &makeCat));
    registry.add(sizedEntry("ghz", "GHZ-state CX chain (paper: 127 qubits)",
                            127, &makeGhz));
    registry.add(multiplierEntry());
    registry.add(squareRootEntry());
    registry.add(selectEntry());
    return registry;
}

const BenchmarkEntry &
BenchmarkRegistry::entry(const std::string &name) const
{
    for (const auto &candidate : entries_)
        if (candidate.name == name)
            return candidate;
    std::string known;
    for (const auto &candidate : entries_)
        known += (known.empty() ? "" : "|") + candidate.name;
    throw ConfigError("unknown benchmark \"" + name + "\" (registered: " +
                      known + ")");
}

Json
BenchmarkRegistry::canonicalParams(const std::string &name,
                                   const Json &params) const
{
    return entry(name).canonicalize(params);
}

const Program &
BenchmarkRegistry::program(const std::string &name, const Json &params,
                           const TranslateOptions &translate_options)
{
    const BenchmarkEntry &bench = entry(name);
    const Json canonical = bench.canonicalize(params);
    const std::string key =
        name + "|" + canonical.dump(0) + "|" +
        (translate_options.inMemoryOps ? "mem" : "ldst") + "|cr" +
        std::to_string(translate_options.crSlots);
    auto found = programs_.find(key);
    if (found == programs_.end()) {
        auto program = std::make_unique<Program>(translate(
            lowerToCliffordT(bench.synthesize(canonical)),
            translate_options));
        found = programs_.emplace(key, std::move(program)).first;
    }
    return *found->second;
}

double
BenchmarkRegistry::hotFraction(const std::string &name,
                               const Json &params) const
{
    const BenchmarkEntry &bench = entry(name);
    LSQCA_REQUIRE(bench.hotFraction,
                  "benchmark \"" + name +
                      "\" does not define a hot-set fraction");
    return bench.hotFraction(bench.canonicalize(params));
}

} // namespace lsqca::api
