#include "api/paper_specs.h"

#include <algorithm>

#include "api/serialize.h"
#include "common/error.h"
#include "common/table.h"
#include "synth/benchmarks.h"

namespace lsqca::api::specs {
namespace {

/** The 1/2/4 factory axis shared by the figure sweeps. */
SweepAxis
factoriesAxis()
{
    SweepAxis axis;
    axis.label = "factories";
    for (const std::int32_t factories : {1, 2, 4}) {
        AxisValue value;
        value.scalar = Json(factories);
        value.arch = Json::object().set("factories", factories);
        value.name = std::to_string(factories);
        axis.values.push_back(std::move(value));
    }
    return axis;
}

AxisValue
benchValue(const char *name, const char *bench, Json params,
           std::int64_t prefix)
{
    AxisValue value;
    value.name = name;
    value.bench = bench;
    value.params = std::move(params);
    if (prefix > 0)
        value.prefix = prefix;
    return value;
}

/**
 * The paper's seven-benchmark axis (bench_util.h paperWorkloads order);
 * long programs get the 60k steady-state prefix unless @p full.
 */
SweepAxis
paperBenchmarkAxis(bool full)
{
    const std::int64_t prefix = full ? 0 : 60'000;
    SweepAxis axis;
    axis.label = "benchmark";
    axis.values.push_back(benchValue("adder", "adder", Json(), 0));
    axis.values.push_back(benchValue("bv", "bv", Json(), 0));
    axis.values.push_back(benchValue("cat", "cat", Json(), 0));
    axis.values.push_back(benchValue("ghz", "ghz", Json(), 0));
    axis.values.push_back(
        benchValue("multiplier", "multiplier", Json(), prefix));
    axis.values.push_back(
        benchValue("square_root", "square_root", Json(), prefix));
    axis.values.push_back(benchValue(
        "SELECT", "select", Json::object().set("width", 11), prefix));
    return axis;
}

AxisValue
machineValue(SamKind sam, std::int32_t banks)
{
    AxisValue value;
    Json patch = Json::object();
    patch.set("sam", samKindName(sam));
    if (sam != SamKind::Conventional)
        patch.set("banks", banks);
    value.arch = std::move(patch);
    return value;
}

} // namespace

SweepSpec
fig13(bool full)
{
    SweepSpec spec;
    spec.name = "fig13";
    spec.nameTemplate = "{benchmark}/{machine}/f{factories}";
    spec.axes.push_back(factoriesAxis());
    spec.axes.push_back(paperBenchmarkAxis(full));

    // The Fig. 13 bar machines, left to right (bench_util.h).
    SweepAxis machines;
    machines.label = "machine";
    machines.values.push_back(machineValue(SamKind::Point, 1));
    machines.values.push_back(machineValue(SamKind::Point, 2));
    machines.values.push_back(machineValue(SamKind::Line, 1));
    machines.values.push_back(machineValue(SamKind::Line, 2));
    machines.values.push_back(machineValue(SamKind::Line, 4));
    machines.values.push_back(machineValue(SamKind::Conventional, 1));
    spec.axes.push_back(std::move(machines));
    return spec;
}

SweepSpec
fig14(bool full)
{
    SweepSpec spec;
    spec.name = "fig14";
    spec.nameTemplate = "{benchmark}/{machine}/f{factories}";
    spec.axes.push_back(factoriesAxis());
    spec.axes.push_back(paperBenchmarkAxis(full));

    struct Choice
    {
        const char *label;
        SamKind sam;
        std::int32_t banks;
    };
    constexpr Choice kChoices[] = {
        {"point#1", SamKind::Point, 1},
        {"point#2", SamKind::Point, 2},
        {"line#1", SamKind::Line, 1},
        {"line#4", SamKind::Line, 4},
    };

    SweepAxis machines;
    machines.label = "machine";
    AxisValue conventional = machineValue(SamKind::Conventional, 1);
    conventional.name = "conventional";
    machines.values.push_back(std::move(conventional));
    for (int step = 0; step <= 20; ++step) {
        const double f = 0.05 * step;
        for (const Choice &choice : kChoices) {
            AxisValue value = machineValue(choice.sam, choice.banks);
            value.arch.set("hybrid_fraction", f);
            value.name = std::string(choice.label) + "/h" +
                         TextTable::num(f, 2);
            machines.values.push_back(std::move(value));
        }
    }
    spec.axes.push_back(std::move(machines));
    return spec;
}

SweepSpec
fig14Sampled(bool full)
{
    SweepSpec spec = fig14(full);
    spec.name = "fig14_sampled";
    // 200-instruction units, one of every 40 measured, with a
    // 200-instruction detailed warm-up each: ~1.7% of a 60k-prefix
    // program runs in detail, which reproduces the figure an order of
    // magnitude faster while the ci95 stays a few percent of cpi.
    // target_ci makes the orchestration service escalate any shard
    // whose relative half-width exceeds 10% to an exact rerun.
    spec.estimator.mode = estimate::EstimatorMode::Sampled;
    spec.estimator.unitInstrs = 200;
    spec.estimator.warmupInstrs = 200;
    spec.estimator.period = 40;
    spec.estimator.targetCi = 0.10;
    return spec;
}

SweepSpec
fig15(bool full)
{
    SweepSpec spec;
    spec.name = "fig15";
    spec.nameTemplate = "{benchmark}/{machine}/f{factories}";
    spec.axes.push_back(factoriesAxis());

    // Each width's circuit is synthesized once (registry memoization)
    // on a steady-state unary-iteration prefix unless --full.
    SweepAxis widths;
    widths.label = "benchmark";
    for (const std::int32_t width : {21, 41, 61, 81, 101}) {
        const std::int64_t maxTerms =
            full ? 0
                 : std::min<std::int64_t>(selectLayout(width).numTerms,
                                          1200);
        AxisValue value;
        value.name = "SELECT" + std::to_string(width);
        value.bench = "select";
        value.params = Json::object()
                           .set("width", width)
                           .set("max_terms", maxTerms);
        widths.values.push_back(std::move(value));
    }
    spec.axes.push_back(std::move(widths));

    struct Config
    {
        const char *label;
        SamKind sam;
        std::int32_t banks;
        bool hybrid;
    };
    constexpr Config kConfigs[] = {
        {"point#1", SamKind::Point, 1, false},
        {"point#2", SamKind::Point, 2, false},
        {"line#1", SamKind::Line, 1, false},
        {"line#4", SamKind::Line, 4, false},
        {"hybrid point#1", SamKind::Point, 1, true},
        {"hybrid point#2", SamKind::Point, 2, true},
        {"hybrid line#1", SamKind::Line, 1, true},
        {"hybrid line#4", SamKind::Line, 4, true},
    };

    SweepAxis machines;
    machines.label = "machine";
    AxisValue conventional = machineValue(SamKind::Conventional, 1);
    conventional.name = "conventional";
    machines.values.push_back(std::move(conventional));
    for (const Config &config : kConfigs) {
        AxisValue value = machineValue(config.sam, config.banks);
        if (config.hybrid)
            // Pin the control+temporal registers into the
            // conventional region: resolved per width at expansion.
            value.arch.set("hybrid_fraction", "hot");
        value.name = config.label;
        machines.values.push_back(std::move(value));
    }
    spec.axes.push_back(std::move(machines));
    return spec;
}

SweepSpec
ablation(bool full)
{
    const std::int64_t prefix = full ? 0 : 60'000;
    SweepSpec spec;
    spec.name = "ablation";
    spec.nameTemplate = "{benchmark}/{variant}";

    SweepAxis works;
    works.label = "benchmark";
    works.values.push_back(
        benchValue("multiplier", "multiplier", Json(), prefix));
    works.values.push_back(benchValue(
        "SELECT", "select", Json::object().set("width", 11), prefix));
    works.values.push_back(benchValue("cat", "cat", Json(), 0));
    spec.axes.push_back(std::move(works));

    struct Variant
    {
        const char *label;
        bool useLdSt; ///< run the explicit-LD/ST translation
        Json patch;
    };
    const Variant kVariants[] = {
        {"baseline (all paper opts)", false, Json::object()},
        {"no locality-aware store", false,
         Json::object().set("locality_store", false)},
        {"no in-memory ops (LD/ST everywhere)", true,
         Json::object().set("in_memory_ops", false)},
        {"+ direct-surgery extension", false,
         Json::object().set("direct_surgery", true)},
        {"buffer cap 1", false, Json::object().set("buffer_cap", 1)},
        {"buffer cap 8", false, Json::object().set("buffer_cap", 8)},
        {"cold magic buffer", false,
         Json::object().set("warm_buffer", false)},
        {"2 banks", false, Json::object().set("banks", 2)},
        {"no row-parallel unitaries", false,
         Json::object().set("row_parallel_ops", false)},
        {"interleaved placement", false,
         Json::object().set("placement", "interleaved")},
        {"interleaved + direct surgery", false,
         Json::object()
             .set("placement", "interleaved")
             .set("direct_surgery", true)},
    };

    SweepAxis variants;
    variants.label = "variant";
    AxisValue conventional = machineValue(SamKind::Conventional, 1);
    conventional.name = "conventional";
    variants.values.push_back(std::move(conventional));
    for (const Variant &variant : kVariants) {
        for (const SamKind sam : {SamKind::Point, SamKind::Line}) {
            AxisValue value;
            value.arch = Json::object().set("sam", samKindName(sam));
            for (const auto &member : variant.patch.members())
                value.arch.set(member.first, member.second);
            if (variant.useLdSt)
                value.translate =
                    Json::object().set("in_memory_ops", false);
            ArchConfig cfg;
            applyArchPatch(cfg, value.arch);
            value.name = std::string(variant.label) + "/" + cfg.label();
            variants.values.push_back(std::move(value));
        }
    }
    spec.axes.push_back(std::move(variants));
    return spec;
}

SweepSpec
smoke()
{
    SweepSpec spec;
    spec.name = "smoke";
    spec.nameTemplate = "{benchmark}/{machine}/f{factories}";

    SweepAxis factories;
    factories.label = "factories";
    for (const std::int32_t n : {1, 2}) {
        AxisValue value;
        value.scalar = Json(n);
        value.arch = Json::object().set("factories", n);
        value.name = std::to_string(n);
        factories.values.push_back(std::move(value));
    }
    spec.axes.push_back(std::move(factories));

    // Miniature instances of three program families: seconds, not
    // minutes, so CI can shard/merge and diff the whole sweep.
    SweepAxis benchmarks;
    benchmarks.label = "benchmark";
    benchmarks.values.push_back(benchValue(
        "adder", "adder", Json::object().set("width", 16), 0));
    benchmarks.values.push_back(benchValue(
        "ghz", "ghz", Json::object().set("num_qubits", 48), 0));
    benchmarks.values.push_back(benchValue(
        "SELECT", "select", Json::object().set("width", 4), 0));
    spec.axes.push_back(std::move(benchmarks));

    SweepAxis machines;
    machines.label = "machine";
    machines.values.push_back(machineValue(SamKind::Point, 1));
    machines.values.push_back(machineValue(SamKind::Line, 2));
    machines.values.push_back(machineValue(SamKind::Conventional, 1));
    spec.axes.push_back(std::move(machines));
    return spec;
}

SweepSpec
byName(const std::string &name, bool full)
{
    if (name == "fig13")
        return fig13(full);
    if (name == "fig14")
        return fig14(full);
    if (name == "fig14_sampled")
        return fig14Sampled(full);
    if (name == "fig15")
        return fig15(full);
    if (name == "ablation")
        return ablation(full);
    if (name == "smoke")
        return smoke();
    throw ConfigError(
        "unknown spec \"" + name +
        "\" (fig13|fig14|fig14_sampled|fig15|ablation|smoke)");
}

} // namespace lsqca::api::specs
