#ifndef LSQCA_API_JSON_READER_H
#define LSQCA_API_JSON_READER_H

/**
 * @file
 * Strict JSON-object cursor shared by every deserializer in the API
 * layer: each get marks its key, finish() rejects whatever was never
 * asked for, and all diagnostics carry the "<what>.<key>" path. This is
 * what makes a typo in a spec file fail fast instead of silently
 * running the wrong experiment.
 */

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"

namespace lsqca::api {

/** Cursor over a strict JSON object (see file comment). */
class ObjectReader
{
  public:
    ObjectReader(const Json &doc, const std::string &what)
        : doc_(doc), what_(what)
    {
        LSQCA_REQUIRE(doc.isObject(), what + " must be a JSON object");
        seen_.assign(doc.members().size(), false);
    }

    /** The raw member, or nullptr when absent. */
    const Json *
    find(const std::string &key)
    {
        const auto &members = doc_.members();
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (members[i].first == key) {
                seen_[i] = true;
                return &members[i].second;
            }
        }
        return nullptr;
    }

    /** find() that throws when the key is absent. */
    const Json &
    require(const std::string &key)
    {
        const Json *value = find(key);
        LSQCA_REQUIRE(value != nullptr,
                      what_ + " is missing required key \"" + key + "\"");
        return *value;
    }

    void
    readBool(const std::string &key, bool &out)
    {
        if (const Json *value = find(key)) {
            LSQCA_REQUIRE(value->isBool(),
                          context(key) + " must be a boolean");
            out = value->asBool();
        }
    }

    void
    readString(const std::string &key, std::string &out)
    {
        if (const Json *value = find(key)) {
            LSQCA_REQUIRE(value->isString(),
                          context(key) + " must be a string");
            out = value->asString();
        }
    }

    void
    readInt32(const std::string &key, std::int32_t &out,
              std::int64_t min = std::numeric_limits<std::int32_t>::min(),
              std::int64_t max = std::numeric_limits<std::int32_t>::max())
    {
        std::int64_t v = out;
        readInt64(key, v, min, max);
        out = static_cast<std::int32_t>(v);
    }

    void
    readInt64(const std::string &key, std::int64_t &out,
              std::int64_t min = std::numeric_limits<std::int64_t>::min(),
              std::int64_t max = std::numeric_limits<std::int64_t>::max())
    {
        if (const Json *value = find(key)) {
            LSQCA_REQUIRE(value->isNumber(),
                          context(key) + " must be a number");
            std::int64_t v = 0;
            try {
                v = value->asInt();
            } catch (const ConfigError &) {
                throw ConfigError(context(key) + " must be an integer");
            }
            LSQCA_REQUIRE(v >= min && v <= max,
                          context(key) + " = " + std::to_string(v) +
                              " is outside [" + std::to_string(min) +
                              ", " + std::to_string(max) + "]");
            out = v;
        }
    }

    void
    readDouble(const std::string &key, double &out, double min, double max)
    {
        if (const Json *value = find(key)) {
            LSQCA_REQUIRE(value->isNumber(),
                          context(key) + " must be a number");
            const double v = value->asDouble();
            LSQCA_REQUIRE(v >= min && v <= max,
                          context(key) + " = " + std::to_string(v) +
                              " is outside [" + std::to_string(min) +
                              ", " + std::to_string(max) + "]");
            out = v;
        }
    }

    /** Reject every member that no read*() consumed. */
    void
    finish() const
    {
        const auto &members = doc_.members();
        for (std::size_t i = 0; i < members.size(); ++i)
            LSQCA_REQUIRE(seen_[i], "unknown " + what_ + " key \"" +
                                        members[i].first + "\"");
    }

  private:
    std::string
    context(const std::string &key) const
    {
        return what_ + "." + key;
    }

    const Json &doc_;
    std::string what_;
    std::vector<bool> seen_;
};

} // namespace lsqca::api

#endif // LSQCA_API_JSON_READER_H
