#ifndef LSQCA_API_SERIALIZE_H
#define LSQCA_API_SERIALIZE_H

/**
 * @file
 * JSON serialization for the simulator's configuration types, so that
 * experiments are data: spec files, BENCH reports, and the CLI all
 * speak the same schema. Deserialization is strict — unknown keys,
 * wrong types, and out-of-range values raise ConfigError rather than
 * being silently dropped, so a typo in a spec file fails fast instead
 * of running the wrong experiment.
 *
 * Round-trip guarantees (pinned by tests/api/serialize_test.cpp):
 *   fromJson(toJson(x)) == x           for every field,
 *   fromJson(toJson(cfg)).label() == cfg.label().
 */

#include "arch/config.h"
#include "common/json.h"
#include "sim/simulator.h"
#include "translate/translate.h"

namespace lsqca::api {

/** Full Latencies object, every field present. */
Json toJson(const Latencies &lat);

/**
 * Merge a (possibly partial) latencies object into @p lat. Unknown
 * keys and negative values throw ConfigError.
 */
void applyLatenciesPatch(Latencies &lat, const Json &patch);

/** Strict full deserialization (missing keys keep defaults). */
Latencies latenciesFromJson(const Json &doc);

/** Full ArchConfig object, every field present (nested latencies). */
Json toJson(const ArchConfig &cfg);

/**
 * Merge a partial ArchConfig object into @p cfg without validating
 * the final combination (spec axes compose several patches before the
 * result is checked). Unknown keys, wrong types, and values outside
 * their field's representable range throw ConfigError.
 */
void applyArchPatch(ArchConfig &cfg, const Json &patch);

/**
 * Deserialize and validate() a config. Missing keys keep their
 * defaults, so a partial document acts as a patch on ArchConfig{}.
 */
ArchConfig archConfigFromJson(const Json &doc);

/**
 * Full estimator block: mode + unit_instrs + warmup_instrs + period +
 * target_ci (docs/SAMPLING.md).
 */
Json toJson(const estimate::EstimatorOptions &options);

/** Strict deserialization; the result is validate()d. */
estimate::EstimatorOptions estimatorOptionsFromJson(const Json &doc);

/**
 * Full SimOptions document: arch + max_instructions + record_trace +
 * record_breakdown, plus an "estimator" block only when the mode is
 * not exact — exact-mode documents (and their fingerprints) are
 * byte-identical to pre-estimator output. SimOptions::observers are
 * runtime-only (borrowed pointers) and are never serialized; a
 * deserialized options object always has an empty observer list.
 */
Json toJson(const SimOptions &options);

/** Strict deserialization; the embedded arch is validated. */
SimOptions simOptionsFromJson(const Json &doc);

/** Full LatencySplit object, every component present. */
Json toJson(const LatencySplit &split);

/** Strict full deserialization (missing keys keep 0). */
LatencySplit latencySplitFromJson(const Json &doc);

/**
 * SimResult::breakdown as the `lsqca-bench-v2` "breakdown" array: one
 * `{op, count, beats, split}` object per executed opcode, in opcode
 * order.
 */
Json toJson(const std::vector<OpcodeSplit> &breakdown);

/** Strict inverse of the breakdown serialization. */
std::vector<OpcodeSplit> breakdownFromJson(const Json &doc);

/** Translate options: in_memory_ops + cr_slots. */
Json toJson(const TranslateOptions &options);

/** Merge a partial translate-options object (strict). */
void applyTranslatePatch(TranslateOptions &options, const Json &patch);

/** Strict deserialization (missing keys keep defaults). */
TranslateOptions translateOptionsFromJson(const Json &doc);

} // namespace lsqca::api

#endif // LSQCA_API_SERIALIZE_H
