#include "api/spec.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <mutex>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "api/json_reader.h"
#include "api/serialize.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/table.h"

namespace lsqca::api {
namespace {

constexpr const char *kSpecSchemaV1 = "lsqca-spec-v1";
constexpr const char *kSpecSchemaV2 = "lsqca-spec-v2";
constexpr const char *kBenchSchemaV1 = "lsqca-bench-v1";
constexpr const char *kBenchSchemaV2 = "lsqca-bench-v2";

/** BENCH schema a spec's sweeps will emit (v2 carries breakdowns). */
const char *
benchSchemaFor(const SweepSpec &spec)
{
    return spec.recordBreakdown ? kBenchSchemaV2 : kBenchSchemaV1;
}

/** Validate and return a BENCH document's schema string (v1 or v2). */
std::string
benchSchemaOf(const Json &doc)
{
    const Json &schema = doc.at("schema");
    LSQCA_REQUIRE(schema.isString() &&
                      (schema.asString() == kBenchSchemaV1 ||
                       schema.asString() == kBenchSchemaV2),
                  std::string("BENCH schema must be \"") +
                      kBenchSchemaV1 + "\" or \"" + kBenchSchemaV2 +
                      "\"");
    return schema.asString();
}

AxisValue
axisValueFromJson(const Json &doc, const std::string &axisLabel)
{
    AxisValue value;
    if (doc.isNumber()) {
        // Scalar grid shorthand: the axis label names an integer
        // ArchConfig field ({"axis": "factories", "values": [1, 2, 4]}).
        LSQCA_REQUIRE(doc.isInt(),
                      "axis \"" + axisLabel +
                          "\": scalar shorthand values must be "
                          "integers; use explicit objects otherwise");
        value.scalar = doc;
        value.arch = Json::object().set(axisLabel, doc);
        value.name = std::to_string(doc.asInt());
        return value;
    }
    ObjectReader reader(doc, "axis \"" + axisLabel + "\" value");
    reader.readString("name", value.name);
    reader.readString("bench", value.bench);
    if (const Json *params = reader.find("params")) {
        LSQCA_REQUIRE(params->isObject(),
                      "axis value params must be an object");
        value.params = *params;
    }
    std::int64_t prefix = -1;
    reader.readInt64("prefix", prefix, 0,
                     std::numeric_limits<std::int64_t>::max());
    if (prefix >= 0)
        value.prefix = prefix;
    if (const Json *arch = reader.find("arch")) {
        LSQCA_REQUIRE(arch->isObject(),
                      "axis value arch must be an object");
        value.arch = *arch;
    }
    if (const Json *translate = reader.find("translate")) {
        LSQCA_REQUIRE(translate->isObject(),
                      "axis value translate must be an object");
        value.translate = *translate;
    }
    reader.finish();
    return value;
}

Json
axisValueToJson(const AxisValue &value)
{
    if (!value.scalar.isNull())
        return value.scalar;
    Json doc = Json::object();
    if (!value.name.empty())
        doc.set("name", value.name);
    if (!value.bench.empty())
        doc.set("bench", value.bench);
    if (!value.params.isNull())
        doc.set("params", value.params);
    if (value.prefix)
        doc.set("prefix", *value.prefix);
    if (!value.arch.isNull())
        doc.set("arch", value.arch);
    if (!value.translate.isNull())
        doc.set("translate", value.translate);
    return doc;
}

/**
 * Replace a "hybrid_fraction": "hot" placeholder with the benchmark's
 * hot-set fraction; other patches pass through untouched.
 */
Json
resolveHotFraction(const Json &patch, const BenchmarkRegistry &registry,
                   const std::string &bench, const Json &params)
{
    const Json *hybrid = patch.find("hybrid_fraction");
    if (hybrid == nullptr || !hybrid->isString())
        return patch;
    LSQCA_REQUIRE(hybrid->asString() == "hot",
                  "arch.hybrid_fraction must be a number or \"hot\"");
    Json resolved = Json::object();
    for (const auto &member : patch.members()) {
        if (member.first == "hybrid_fraction")
            resolved.set(member.first,
                         registry.hotFraction(bench, params));
        else
            resolved.set(member.first, member.second);
    }
    return resolved;
}

/** Fragment an axis value contributes to the job name. */
std::string
valueFragment(const AxisValue &value, const Json &resolvedArch)
{
    if (!value.name.empty())
        return value.name;
    if (!value.bench.empty())
        return value.bench;
    if (!resolvedArch.isNull()) {
        ArchConfig cfg;
        applyArchPatch(cfg, resolvedArch);
        return cfg.label();
    }
    return "";
}

std::string
renderName(const std::string &nameTemplate,
           const std::vector<SweepAxis> &axes,
           const std::vector<std::string> &fragments,
           const std::string &archLabel)
{
    if (nameTemplate.empty()) {
        std::string name;
        for (const std::string &fragment : fragments) {
            if (fragment.empty())
                continue;
            if (!name.empty())
                name += '/';
            name += fragment;
        }
        return name;
    }
    std::string name;
    for (std::size_t i = 0; i < nameTemplate.size();) {
        const char c = nameTemplate[i];
        if (c != '{') {
            name += c;
            ++i;
            continue;
        }
        const std::size_t close = nameTemplate.find('}', i);
        LSQCA_REQUIRE(close != std::string::npos,
                      "unclosed '{' in name template \"" +
                          nameTemplate + "\"");
        const std::string placeholder =
            nameTemplate.substr(i + 1, close - i - 1);
        if (placeholder == "arch") {
            name += archLabel;
        } else {
            bool found = false;
            for (std::size_t a = 0; a < axes.size(); ++a) {
                if (axes[a].label == placeholder) {
                    name += fragments[a];
                    found = true;
                    break;
                }
            }
            LSQCA_REQUIRE(found, "name template placeholder \"{" +
                                     placeholder +
                                     "}\" names no axis (and is not "
                                     "\"arch\")");
        }
        i = close + 1;
    }
    return name;
}

} // namespace

SweepSpec
SweepSpec::fromJson(const Json &doc)
{
    SweepSpec spec;
    ObjectReader reader(doc, "spec");
    const Json &schema = reader.require("schema");
    LSQCA_REQUIRE(schema.isString() &&
                      (schema.asString() == kSpecSchemaV1 ||
                       schema.asString() == kSpecSchemaV2),
                  std::string("spec.schema must be \"") + kSpecSchemaV1 +
                      "\" or \"" + kSpecSchemaV2 + "\"");
    const bool v2 = schema.asString() == kSpecSchemaV2;
    reader.readString("name", spec.name);
    LSQCA_REQUIRE(!spec.name.empty(), "spec.name must be set");
    reader.readString("name_template", spec.nameTemplate);
    if (const Json *base = reader.find("arch_base")) {
        LSQCA_REQUIRE(base->isObject(),
                      "spec.arch_base must be an object");
        spec.archBase = *base;
    }
    reader.readBool("record_trace", spec.recordTrace);
    reader.readBool("record_breakdown", spec.recordBreakdown);
    if (const Json *estimator = reader.find("estimator")) {
        LSQCA_REQUIRE(v2, "spec.estimator requires schema \"" +
                              std::string(kSpecSchemaV2) + "\"");
        spec.estimator = estimatorOptionsFromJson(*estimator);
    }
    const Json &axes = reader.require("axes");
    LSQCA_REQUIRE(axes.isArray() && axes.size() > 0,
                  "spec.axes must be a non-empty array");
    for (const Json &axisDoc : axes.items()) {
        ObjectReader axisReader(axisDoc, "axis");
        SweepAxis axis;
        axisReader.readString("axis", axis.label);
        LSQCA_REQUIRE(!axis.label.empty(),
                      "every axis needs an \"axis\" label");
        const Json &values = axisReader.require("values");
        LSQCA_REQUIRE(values.isArray() && values.size() > 0,
                      "axis \"" + axis.label +
                          "\" needs a non-empty values array");
        for (const Json &valueDoc : values.items())
            axis.values.push_back(
                axisValueFromJson(valueDoc, axis.label));
        axisReader.finish();
        spec.axes.push_back(std::move(axis));
    }
    reader.finish();
    return spec;
}

SweepSpec
SweepSpec::load(const std::string &path)
{
    // Json::load's errors already carry the path; only wrap the
    // schema-level ones from fromJson.
    const Json doc = Json::load(path);
    try {
        return fromJson(doc);
    } catch (const ConfigError &e) {
        throw ConfigError(path + ": " + e.what());
    }
}

Json
SweepSpec::toJson() const
{
    const bool v2 = estimator.mode != estimate::EstimatorMode::Exact;
    Json doc = Json::object();
    doc.set("schema", v2 ? kSpecSchemaV2 : kSpecSchemaV1);
    doc.set("name", name);
    if (!nameTemplate.empty())
        doc.set("name_template", nameTemplate);
    if (!archBase.isNull())
        doc.set("arch_base", archBase);
    if (recordTrace)
        doc.set("record_trace", recordTrace);
    if (recordBreakdown)
        doc.set("record_breakdown", recordBreakdown);
    if (v2)
        doc.set("estimator", api::toJson(estimator));
    Json axesDoc = Json::array();
    for (const SweepAxis &axis : axes) {
        Json axisDoc = Json::object();
        axisDoc.set("axis", axis.label);
        Json values = Json::array();
        for (const AxisValue &value : axis.values)
            values.push(axisValueToJson(value));
        axisDoc.set("values", std::move(values));
        axesDoc.push(std::move(axisDoc));
    }
    doc.set("axes", std::move(axesDoc));
    return doc;
}

ShardRange
ShardRange::parse(const std::string &text)
{
    const std::size_t slash = text.find('/');
    LSQCA_REQUIRE(slash != std::string::npos && slash > 0 &&
                      slash + 1 < text.size(),
                  "shard must look like \"i/N\", got \"" + text + "\"");
    ShardRange shard;
    try {
        std::size_t used = 0;
        shard.index = std::stoi(text.substr(0, slash), &used);
        LSQCA_REQUIRE(used == slash, "bad shard index");
        shard.count = std::stoi(text.substr(slash + 1), &used);
        LSQCA_REQUIRE(used == text.size() - slash - 1,
                      "bad shard count");
    } catch (const ConfigError &) {
        throw;
    } catch (const std::exception &) {
        throw ConfigError("shard must look like \"i/N\", got \"" + text +
                          "\"");
    }
    LSQCA_REQUIRE(shard.count >= 1, "shard count must be >= 1");
    LSQCA_REQUIRE(shard.index >= 0 && shard.index < shard.count,
                  "shard index must lie in [0, count)");
    return shard;
}

std::int32_t
parseThreadCount(const std::string &text)
{
    try {
        std::size_t used = 0;
        const int threads = std::stoi(text, &used);
        LSQCA_REQUIRE(used == text.size() && threads >= 0 &&
                          threads <= 4096,
                      "bad thread count");
        return threads;
    } catch (const ConfigError &) {
        throw ConfigError("--threads expects an integer in [0, 4096], "
                          "got \"" +
                          text + "\"");
    } catch (const std::exception &) {
        throw ConfigError("--threads expects an integer in [0, 4096], "
                          "got \"" +
                          text + "\"");
    }
}

double
parseTimeoutSeconds(const std::string &text)
{
    try {
        std::size_t used = 0;
        const double seconds = std::stod(text, &used);
        LSQCA_REQUIRE(used == text.size() && seconds > 0.0 &&
                          seconds <= 1e9,
                      "bad timeout");
        return seconds;
    } catch (const std::exception &) {
        throw ConfigError(
            "--timeout-seconds expects a number in (0, 1e9], got \"" +
            text + "\"");
    }
}

std::string
parseFingerprintArg(const std::string &text)
{
    LSQCA_REQUIRE(isFingerprint(text),
                  "--seed-check expects a 16-hex-digit shard "
                  "fingerprint, got \"" +
                      text + "\"");
    return text;
}

std::pair<std::size_t, std::size_t>
ShardRange::bounds(std::size_t total) const
{
    const auto n = static_cast<std::uint64_t>(total);
    const auto i = static_cast<std::uint64_t>(index);
    const auto c = static_cast<std::uint64_t>(count);
    return {static_cast<std::size_t>(n * i / c),
            static_cast<std::size_t>(n * (i + 1) / c)};
}

std::vector<ExpandedJob>
expandSpec(const SweepSpec &spec, const BenchmarkRegistry &registry)
{
    LSQCA_REQUIRE(!spec.axes.empty(), "spec \"" + spec.name +
                                          "\" has no axes");
    std::size_t benchAxis = spec.axes.size();
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        const SweepAxis &axis = spec.axes[a];
        LSQCA_REQUIRE(!axis.values.empty(),
                      "axis \"" + axis.label + "\" has no values");
        for (std::size_t b = a + 1; b < spec.axes.size(); ++b)
            LSQCA_REQUIRE(spec.axes[b].label != axis.label,
                          "duplicate axis label \"" + axis.label + "\"");
        const bool hasBench = !axis.values.front().bench.empty();
        for (const AxisValue &value : axis.values)
            LSQCA_REQUIRE(
                !value.bench.empty() == hasBench,
                "axis \"" + axis.label +
                    "\" mixes benchmark and non-benchmark values");
        if (hasBench) {
            LSQCA_REQUIRE(benchAxis == spec.axes.size(),
                          "spec has more than one benchmark axis");
            benchAxis = a;
        }
    }
    LSQCA_REQUIRE(benchAxis != spec.axes.size(),
                  "spec \"" + spec.name +
                      "\" has no benchmark axis (no value sets "
                      "\"bench\")");

    std::vector<ExpandedJob> jobs;
    std::vector<std::size_t> index(spec.axes.size(), 0);
    std::vector<std::string> fragments(spec.axes.size());
    for (;;) {
        const AxisValue &benchValue =
            spec.axes[benchAxis].values[index[benchAxis]];
        ExpandedJob job;
        job.bench = benchValue.bench;
        job.params =
            registry.canonicalParams(job.bench, benchValue.params);

        ArchConfig cfg;
        if (!spec.archBase.isNull())
            applyArchPatch(cfg, spec.archBase);
        std::int64_t prefix = 0;
        for (std::size_t a = 0; a < spec.axes.size(); ++a) {
            const AxisValue &value = spec.axes[a].values[index[a]];
            if (value.prefix)
                prefix = *value.prefix;
            if (!value.translate.isNull())
                applyTranslatePatch(job.translate, value.translate);
            Json resolvedArch = value.arch;
            if (!value.arch.isNull()) {
                resolvedArch = resolveHotFraction(
                    value.arch, registry, job.bench, job.params);
                applyArchPatch(cfg, resolvedArch);
            }
            fragments[a] = valueFragment(value, resolvedArch);
        }
        cfg.validate();
        job.options.arch = cfg;
        job.options.maxInstructions = prefix;
        job.options.recordTrace = spec.recordTrace;
        job.options.recordBreakdown = spec.recordBreakdown;
        job.options.estimator = spec.estimator;
        job.name = renderName(spec.nameTemplate, spec.axes, fragments,
                              cfg.label());
        jobs.push_back(std::move(job));

        // Odometer: last axis spins fastest (first axis outermost).
        std::size_t a = spec.axes.size();
        for (;;) {
            if (a == 0)
                return jobs;
            --a;
            if (++index[a] < spec.axes[a].values.size())
                break;
            index[a] = 0;
        }
    }
}

Json
shardManifest(const SweepSpec &spec,
              const std::vector<ExpandedJob> &jobs,
              const ShardRange &shard, bool noTiming)
{
    const auto [begin, end] = shard.bounds(jobs.size());
    Json manifest = Json::object();
    manifest.set("schema", "lsqca-shard-v1");
    // The schema the shard's BENCH bytes will carry: a spec that turns
    // breakdowns on (v2) must miss against cached v1 results.
    manifest.set("bench_schema", benchSchemaFor(spec));
    manifest.set("engine_epoch", kEngineEpoch);
    manifest.set("sweep", spec.name);
    Json slice = Json::object();
    slice.set("index", shard.index);
    slice.set("count", shard.count);
    slice.set("offset", static_cast<std::int64_t>(begin));
    slice.set("total", static_cast<std::int64_t>(jobs.size()));
    manifest.set("shard", std::move(slice));
    manifest.set("no_timing", noTiming);
    Json jobsDoc = Json::array();
    for (std::size_t i = begin; i < end; ++i) {
        const ExpandedJob &job = jobs[i];
        Json jobDoc = Json::object();
        jobDoc.set("name", job.name);
        jobDoc.set("bench", job.bench);
        jobDoc.set("params", job.params);
        jobDoc.set("translate", toJson(job.translate));
        jobDoc.set("options", toJson(job.options));
        jobsDoc.push(std::move(jobDoc));
    }
    manifest.set("jobs", std::move(jobsDoc));
    return manifest;
}

std::string
shardFingerprint(const SweepSpec &spec,
                 const std::vector<ExpandedJob> &jobs,
                 const ShardRange &shard, bool noTiming)
{
    return contentFingerprint(
        shardManifest(spec, jobs, shard, noTiming).dump(0));
}

std::vector<std::string>
shardFingerprints(const SweepSpec &spec,
                  const std::vector<ExpandedJob> &jobs,
                  std::int32_t shardCount, bool noTiming)
{
    LSQCA_REQUIRE(shardCount >= 1, "shard count must be >= 1");
    std::vector<std::string> fingerprints;
    fingerprints.reserve(static_cast<std::size_t>(shardCount));
    for (std::int32_t i = 0; i < shardCount; ++i) {
        ShardRange shard;
        shard.index = i;
        shard.count = shardCount;
        fingerprints.push_back(
            shardFingerprint(spec, jobs, shard, noTiming));
    }
    return fingerprints;
}

Json
jobManifest(const SweepSpec &spec, const ExpandedJob &job, bool noTiming)
{
    Json manifest = Json::object();
    manifest.set("schema", "lsqca-job-v1");
    // The schema the entry's document will carry: a spec that turns
    // breakdowns on (v2) must miss against cached v1 entries.
    manifest.set("bench_schema", benchSchemaFor(spec));
    manifest.set("engine_epoch", kEngineEpoch);
    manifest.set("no_timing", noTiming);
    manifest.set("name", job.name);
    manifest.set("bench", job.bench);
    manifest.set("params", job.params);
    manifest.set("translate", toJson(job.translate));
    manifest.set("options", toJson(job.options));
    return manifest;
}

std::string
jobFingerprint(const SweepSpec &spec, const ExpandedJob &job, bool noTiming)
{
    return contentFingerprint(jobManifest(spec, job, noTiming).dump(0));
}

std::vector<std::string>
jobFingerprints(const SweepSpec &spec, const std::vector<ExpandedJob> &jobs,
                bool noTiming)
{
    std::vector<std::string> fingerprints;
    fingerprints.reserve(jobs.size());
    for (const ExpandedJob &job : jobs)
        fingerprints.push_back(jobFingerprint(spec, job, noTiming));
    return fingerprints;
}

namespace {

/**
 * Wall-clock abort for worker processes: once armed, a detached-in-
 * spirit thread _Exit()s the process when the deadline passes before
 * the owning scope finishes. _Exit (not abort/exception) because the
 * sweep threads may be anywhere; the orchestrator only needs the
 * conventional timeout exit code.
 */
class Watchdog
{
  public:
    explicit Watchdog(double seconds)
    {
        if (seconds <= 0.0)
            return;
        armed_ = true;
        thread_ = std::thread([this, seconds] {
            std::unique_lock<std::mutex> lock(mutex_);
            const bool finished = cv_.wait_for(
                lock, std::chrono::duration<double>(seconds),
                [this] { return finished_; });
            if (!finished) {
                std::cerr << "lsqca: sweep exceeded --timeout-seconds "
                          << seconds << "; aborting\n";
                std::_Exit(kTimeoutExitCode);
            }
        });
    }

    ~Watchdog()
    {
        if (!armed_)
            return;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            finished_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    bool armed_ = false;
    bool finished_ = false;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
};

} // namespace

SpecRun
runSpec(const SweepSpec &spec, BenchmarkRegistry &registry,
        const RunSpecOptions &options)
{
    SpecRun run;
    std::vector<ExpandedJob> all = expandSpec(spec, registry);
    // Before the seed check: a forced-exact shard must expand to the
    // fingerprint of the exact slice the escalation queued.
    if (options.forceExact)
        for (ExpandedJob &job : all)
            job.options.estimator = estimate::EstimatorOptions{};
    if (!options.seedCheck.empty()) {
        const std::string expanded = shardFingerprint(
            spec, all, options.shard, options.noTiming);
        LSQCA_REQUIRE(
            expanded == options.seedCheck,
            "--seed-check mismatch: this invocation expands to shard "
            "fingerprint " +
                expanded + ", expected " + options.seedCheck +
                " (the spec file or benchmark registry changed since "
                "the shard was queued)");
    }
    const Watchdog watchdog(options.timeoutSeconds);
    const auto [begin, end] = options.shard.bounds(all.size());
    run.expanded.assign(std::make_move_iterator(all.begin() +
                                                static_cast<std::ptrdiff_t>(begin)),
                        std::make_move_iterator(all.begin() +
                                                static_cast<std::ptrdiff_t>(end)));

    // Job-cache partition: with a cache attached, every slice job is
    // looked up by its content fingerprint *before* program
    // resolution — hits splice their cached BENCH entry, and only the
    // misses are synthesized and simulated below.
    const std::size_t sliceSize = run.expanded.size();
    std::vector<std::string> prints;
    std::vector<Json> cachedEntries(sliceSize);
    std::vector<std::size_t> stale;
    if (options.jobCache != nullptr) {
        prints.reserve(sliceSize);
        for (const ExpandedJob &job : run.expanded)
            prints.push_back(jobFingerprint(spec, job, options.noTiming));
        for (std::size_t i = 0; i < sliceSize; ++i) {
            cachedEntries[i] = options.jobCache->fetchEntry(prints[i]);
            if (cachedEntries[i].isNull())
                stale.push_back(i);
        }
    } else {
        stale.resize(sliceSize);
        std::iota(stale.begin(), stale.end(), std::size_t{0});
    }
    run.jobCacheHits = static_cast<std::int64_t>(sliceSize - stale.size());
    run.jobsComputed = static_cast<std::int64_t>(stale.size());

    // Program resolution happens only for the jobs actually run, so a
    // shard never pays for benchmarks that belong to other machines —
    // nor, with a job cache, for jobs whose entries it already holds.
    run.jobs.reserve(stale.size());
    for (const std::size_t i : stale) {
        const ExpandedJob &expanded = run.expanded[i];
        SweepJob job;
        job.name = expanded.name;
        job.program = &registry.program(expanded.bench, expanded.params,
                                        expanded.translate);
        job.options = expanded.options;
        run.jobs.push_back(std::move(job));
    }

    const auto storeEntry = [&](std::size_t slicePos, const Json &entry) {
        if (options.jobCache == nullptr)
            return;
        options.jobCache->storeEntry(
            prints[slicePos], entry,
            jobManifest(spec, run.expanded[slicePos], options.noTiming));
    };

    const SweepEngine engine({options.threads, options.metrics});
    if (options.dieAfter >= 0 &&
        static_cast<std::size_t>(options.dieAfter) < run.jobs.size()) {
        const std::vector<SweepJob> partial(
            run.jobs.begin(),
            run.jobs.begin() +
                static_cast<std::ptrdiff_t>(options.dieAfter));
        const SweepReport partialReport = engine.run(partial);
        // A dying worker still publishes the jobs it finished: the
        // retry attempt recomputes only the tail.
        for (std::size_t k = 0; k < partial.size(); ++k)
            storeEntry(stale[k],
                       benchEntry(partial[k].name, partialReport.results[k],
                                  options.noTiming
                                      ? 0.0
                                      : partialReport.jobSeconds[k]));
        std::cerr << "lsqca: --die-after " << options.dieAfter
                  << ": dying mid-shard (test hook)\n";
        std::_Exit(kDieAfterExitCode);
    }
    run.report = engine.run(run.jobs);

    SweepReport documented = run.report;
    if (options.noTiming) {
        documented.threads = 0;
        documented.wallSeconds = 0.0;
        documented.jobSeconds.assign(run.jobs.size(), 0.0);
    }
    if (options.jobCache == nullptr) {
        run.document = benchReport(spec.name, run.jobs, documented,
                                   spec.recordBreakdown);
    } else {
        // Splice cached and computed entries back into slice order.
        // The Json layer's round-trip guarantee keeps this document
        // byte-identical to a fresh full simulation of the slice.
        bool v2 = spec.recordBreakdown;
        Json entries = Json::array();
        std::size_t k = 0;
        for (std::size_t i = 0; i < sliceSize; ++i) {
            if (!cachedEntries[i].isNull()) {
                v2 = v2 || cachedEntries[i].contains("breakdown");
                entries.push(std::move(cachedEntries[i]));
                continue;
            }
            v2 = v2 || !documented.results[k].breakdown.empty();
            Json entry = benchEntry(run.jobs[k].name, documented.results[k],
                                    documented.jobSeconds[k]);
            storeEntry(i, entry);
            entries.push(std::move(entry));
            ++k;
        }
        run.document =
            benchDocument(spec.name, std::move(entries), documented.threads,
                          documented.wallSeconds, v2);
    }
    if (!options.shard.isWhole()) {
        Json shard = Json::object();
        shard.set("index", options.shard.index);
        shard.set("count", options.shard.count);
        shard.set("offset", static_cast<std::int64_t>(begin));
        shard.set("total", static_cast<std::int64_t>(all.size()));
        run.document.set("shard", std::move(shard));
    }

    if (options.writeJson) {
        std::string fileStem = spec.name;
        if (!options.shard.isWhole())
            fileStem += ".shard" + std::to_string(options.shard.index) +
                        "of" + std::to_string(options.shard.count);
        run.jsonPath =
            writeBenchJson(fileStem, run.document, options.outDir);
        std::cerr << spec.name << ": " << run.expanded.size() << " jobs, "
                  << run.report.threads << " threads, "
                  << TextTable::num(run.report.wallSeconds, 3)
                  << " s -> " << run.jsonPath;
        if (run.jobCacheHits > 0)
            std::cerr << " (" << run.jobCacheHits << " from job cache)";
        std::cerr << "\n";
    }
    return run;
}

Json
mergeBenchReports(const std::vector<Json> &docs,
                  const std::vector<std::string> &labels)
{
    LSQCA_REQUIRE(!docs.empty(), "merge needs at least one document");
    LSQCA_REQUIRE(labels.empty() || labels.size() == docs.size(),
                  "merge labels must parallel the documents");
    const auto labelOf = [&](std::size_t doc) {
        return labels.empty() ? "document " + std::to_string(doc + 1)
                              : labels[doc];
    };

    struct Piece
    {
        const Json *doc = nullptr;
        std::size_t source = 0;
        std::int32_t index = 0;
        std::int64_t offset = 0;
    };
    std::vector<Piece> pieces;
    std::string bench;
    std::string schema;
    std::size_t sharded = 0;
    std::int32_t count = 0;
    std::int64_t total = 0;
    for (const Json &doc : docs) {
        LSQCA_REQUIRE(doc.isObject(), "BENCH document must be an object");
        const std::string docSchema = benchSchemaOf(doc);
        if (schema.empty())
            schema = docSchema;
        LSQCA_REQUIRE(docSchema == schema,
                      "cannot merge mixed BENCH schemas: \"" + schema +
                          "\" vs \"" + docSchema + "\"");
        const std::string docBench = doc.at("bench").asString();
        if (bench.empty())
            bench = docBench;
        LSQCA_REQUIRE(docBench == bench,
                      "cannot merge different sweeps: \"" + bench +
                          "\" vs \"" + docBench + "\"");
        Piece piece;
        piece.doc = &doc;
        piece.source = pieces.size();
        if (const Json *shard = doc.find("shard")) {
            ++sharded;
            piece.index =
                static_cast<std::int32_t>(shard->at("index").asInt());
            piece.offset = shard->at("offset").asInt();
            const auto docCount =
                static_cast<std::int32_t>(shard->at("count").asInt());
            const std::int64_t docTotal = shard->at("total").asInt();
            if (sharded == 1) {
                count = docCount;
                total = docTotal;
            }
            LSQCA_REQUIRE(docCount == count && docTotal == total,
                          "shard documents disagree on the sweep "
                          "partition");
        }
        pieces.push_back(piece);
    }
    LSQCA_REQUIRE(sharded == 0 || sharded == docs.size(),
                  "cannot mix sharded and unsharded BENCH documents");

    if (sharded > 0) {
        LSQCA_REQUIRE(static_cast<std::int32_t>(docs.size()) == count,
                      "expected " + std::to_string(count) +
                          " shards, got " + std::to_string(docs.size()));
        std::sort(pieces.begin(), pieces.end(),
                  [](const Piece &a, const Piece &b) {
                      return a.index < b.index;
                  });
        for (std::size_t i = 0; i < pieces.size(); ++i)
            LSQCA_REQUIRE(pieces[i].index ==
                              static_cast<std::int32_t>(i),
                          "shard indices must cover 0..count-1 exactly "
                          "once");
    }

    std::int32_t threads = 0;
    double wallSeconds = 0.0;
    Json entries = Json::array();
    std::int64_t jobCount = 0;
    struct FirstSeen
    {
        std::size_t source;
        std::size_t entry;
    };
    std::unordered_map<std::string, FirstSeen> seen;
    for (const Piece &piece : pieces) {
        const Json &doc = *piece.doc;
        if (sharded > 0)
            LSQCA_REQUIRE(piece.offset == jobCount,
                          "shard entry counts do not line up with "
                          "their offsets");
        threads = std::max(
            threads,
            static_cast<std::int32_t>(doc.at("threads").asInt()));
        wallSeconds += doc.at("wall_seconds").asDouble();
        const Json &docEntries = doc.at("entries");
        LSQCA_REQUIRE(docEntries.isArray(),
                      "BENCH entries must be an array");
        std::size_t position = 0;
        for (const Json &entry : docEntries.items()) {
            const std::string &name = entry.at("name").asString();
            const auto [first, inserted] =
                seen.emplace(name, FirstSeen{piece.source, position});
            LSQCA_REQUIRE(
                inserted,
                "duplicate entry \"" + name + "\": first in " +
                    labelOf(first->second.source) + " (entry " +
                    std::to_string(first->second.entry) +
                    "), again in " + labelOf(piece.source) +
                    " (entry " + std::to_string(position) + ")");
            entries.push(entry);
            ++jobCount;
            ++position;
        }
    }
    if (sharded > 0)
        LSQCA_REQUIRE(jobCount == total,
                      "merged entries do not cover the whole sweep");

    Json merged = Json::object();
    merged.set("bench", bench);
    merged.set("schema", schema);
    merged.set("threads", threads);
    merged.set("jobs", jobCount);
    merged.set("wall_seconds", wallSeconds);
    merged.set("entries", std::move(entries));
    return merged;
}

} // namespace lsqca::api
