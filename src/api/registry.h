#ifndef LSQCA_API_REGISTRY_H
#define LSQCA_API_REGISTRY_H

/**
 * @file
 * Name-addressable benchmark programs: the declarative experiment API's
 * front end to src/synth. A registry maps (benchmark name, JSON
 * parameter object) to a synthesized, lowered, and translated Program,
 * memoizing the result so one program shared across N sweep points is
 * lowered exactly once — the expensive half of a big sweep's setup.
 *
 * Parameters are validated strictly (unknown keys and out-of-range
 * values throw ConfigError) and canonicalized (defaults filled in), so
 * `{"width": 11}` and `{}` name the same cached program when 11 is the
 * default.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.h"
#include "common/json.h"
#include "isa/program.h"
#include "translate/translate.h"

namespace lsqca::api {

/** One registered benchmark generator. */
struct BenchmarkEntry
{
    std::string name;
    std::string summary;

    /**
     * Strict-parse @p params (an object or null) and return the full
     * canonical parameter object with defaults filled in. Throws
     * ConfigError on unknown keys or out-of-range values.
     */
    std::function<Json(const Json &params)> canonicalize;

    /** Synthesize the circuit for canonicalized parameters. */
    std::function<Circuit(const Json &canonical)> synthesize;

    /**
     * Fraction of qubits that form the benchmark's hot working set
     * (resolves the spec-file "hybrid_fraction": "hot" placeholder).
     * Null when the benchmark defines no such notion.
     */
    std::function<double(const Json &canonical)> hotFraction;
};

/** Maps names + parameter objects to translated Programs (memoized). */
class BenchmarkRegistry
{
  public:
    /** Register a generator. @throws ConfigError on duplicate names. */
    void add(BenchmarkEntry entry);

    /** All seven paper generators (Sec. VI-B), in paper order. */
    static BenchmarkRegistry paper();

    /** Registered entries in registration order. */
    const std::vector<BenchmarkEntry> &entries() const
    {
        return entries_;
    }

    /** Lookup by name. @throws ConfigError when unknown. */
    const BenchmarkEntry &entry(const std::string &name) const;

    /** Canonical parameters for @p name (see BenchmarkEntry). */
    Json canonicalParams(const std::string &name,
                         const Json &params) const;

    /**
     * The translated program for (name, params, translate options),
     * synthesized and lowered on first use and cached thereafter. The
     * reference stays valid for the registry's lifetime.
     */
    const Program &program(const std::string &name, const Json &params,
                           const TranslateOptions &translate = {});

    /** Hot-set fraction (see BenchmarkEntry). @throws when undefined. */
    double hotFraction(const std::string &name, const Json &params) const;

    /** Cached translations so far (observability for tests/CLI). */
    std::size_t cachedPrograms() const { return programs_.size(); }

  private:
    std::vector<BenchmarkEntry> entries_;
    std::unordered_map<std::string, std::unique_ptr<Program>> programs_;
};

} // namespace lsqca::api

#endif // LSQCA_API_REGISTRY_H
