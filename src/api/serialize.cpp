#include "api/serialize.h"

#include <cstdint>
#include <limits>

#include "api/json_reader.h"
#include "common/error.h"

namespace lsqca::api {

Json
toJson(const Latencies &lat)
{
    Json doc = Json::object();
    doc.set("hadamard", lat.hadamard);
    doc.set("phase", lat.phase);
    doc.set("surgery", lat.surgery);
    doc.set("move", lat.move);
    doc.set("long_move", lat.longMove);
    doc.set("pick_diagonal1", lat.pickDiagonal1);
    doc.set("pick_straight1", lat.pickStraight1);
    doc.set("pick_diagonal2", lat.pickDiagonal2);
    doc.set("pick_straight2", lat.pickStraight2);
    doc.set("msf_period", lat.msfPeriod);
    doc.set("magic_transfer", lat.magicTransfer);
    doc.set("sk_wait", lat.skWait);
    return doc;
}

void
applyLatenciesPatch(Latencies &lat, const Json &patch)
{
    ObjectReader reader(patch, "latencies");
    // Negative beat counts are meaningless for every field; the
    // stricter >= 1 floors (move/surgery/msf_period) are enforced by
    // ArchConfig::validate() once the full config is assembled.
    const std::int64_t max = std::numeric_limits<std::int32_t>::max();
    reader.readInt32("hadamard", lat.hadamard, 0, max);
    reader.readInt32("phase", lat.phase, 0, max);
    reader.readInt32("surgery", lat.surgery, 0, max);
    reader.readInt32("move", lat.move, 0, max);
    reader.readInt32("long_move", lat.longMove, 0, max);
    reader.readInt32("pick_diagonal1", lat.pickDiagonal1, 0, max);
    reader.readInt32("pick_straight1", lat.pickStraight1, 0, max);
    reader.readInt32("pick_diagonal2", lat.pickDiagonal2, 0, max);
    reader.readInt32("pick_straight2", lat.pickStraight2, 0, max);
    reader.readInt32("msf_period", lat.msfPeriod, 0, max);
    reader.readInt32("magic_transfer", lat.magicTransfer, 0, max);
    reader.readInt32("sk_wait", lat.skWait, 0, max);
    reader.finish();
}

Latencies
latenciesFromJson(const Json &doc)
{
    Latencies lat;
    applyLatenciesPatch(lat, doc);
    return lat;
}

Json
toJson(const ArchConfig &cfg)
{
    Json doc = Json::object();
    doc.set("sam", samKindName(cfg.sam));
    doc.set("banks", cfg.banks);
    doc.set("factories", cfg.factories);
    doc.set("buffer_cap", cfg.bufferCap);
    doc.set("cr_registers", cfg.crRegisters);
    doc.set("hybrid_fraction", cfg.hybridFraction);
    doc.set("locality_store", cfg.localityStore);
    doc.set("in_memory_ops", cfg.inMemoryOps);
    doc.set("row_parallel_ops", cfg.rowParallelOps);
    doc.set("direct_surgery", cfg.directSurgery);
    doc.set("placement", placementPolicyName(cfg.placement));
    doc.set("instant_magic", cfg.instantMagic);
    doc.set("warm_buffer", cfg.warmBuffer);
    doc.set("latencies", toJson(cfg.lat));
    return doc;
}

void
applyArchPatch(ArchConfig &cfg, const Json &patch)
{
    ObjectReader reader(patch, "arch");
    if (const Json *sam = reader.find("sam")) {
        LSQCA_REQUIRE(sam->isString(), "arch.sam must be a string");
        cfg.sam = samKindFromName(sam->asString());
    }
    const std::int64_t max = std::numeric_limits<std::int32_t>::max();
    reader.readInt32("banks", cfg.banks, 1, max);
    reader.readInt32("factories", cfg.factories, 1, max);
    reader.readInt32("buffer_cap", cfg.bufferCap, -1, max);
    reader.readInt32("cr_registers", cfg.crRegisters, 2, max);
    reader.readDouble("hybrid_fraction", cfg.hybridFraction, 0.0, 1.0);
    reader.readBool("locality_store", cfg.localityStore);
    reader.readBool("in_memory_ops", cfg.inMemoryOps);
    reader.readBool("row_parallel_ops", cfg.rowParallelOps);
    reader.readBool("direct_surgery", cfg.directSurgery);
    if (const Json *placement = reader.find("placement")) {
        LSQCA_REQUIRE(placement->isString(),
                      "arch.placement must be a string");
        cfg.placement = placementPolicyFromName(placement->asString());
    }
    reader.readBool("instant_magic", cfg.instantMagic);
    reader.readBool("warm_buffer", cfg.warmBuffer);
    if (const Json *lat = reader.find("latencies"))
        applyLatenciesPatch(cfg.lat, *lat);
    reader.finish();
}

ArchConfig
archConfigFromJson(const Json &doc)
{
    ArchConfig cfg;
    applyArchPatch(cfg, doc);
    cfg.validate();
    return cfg;
}

Json
toJson(const estimate::EstimatorOptions &options)
{
    Json doc = Json::object();
    doc.set("mode", estimate::estimatorModeName(options.mode));
    doc.set("unit_instrs", options.unitInstrs);
    doc.set("warmup_instrs", options.warmupInstrs);
    doc.set("period", options.period);
    doc.set("target_ci", options.targetCi);
    return doc;
}

estimate::EstimatorOptions
estimatorOptionsFromJson(const Json &doc)
{
    estimate::EstimatorOptions options;
    ObjectReader reader(doc, "estimator");
    const Json &mode = reader.require("mode");
    LSQCA_REQUIRE(mode.isString(), "estimator.mode must be a string");
    options.mode = estimate::estimatorModeFromName(mode.asString());
    const std::int64_t max = std::numeric_limits<std::int64_t>::max();
    reader.readInt64("unit_instrs", options.unitInstrs, 1, max);
    reader.readInt64("warmup_instrs", options.warmupInstrs, 0, max);
    reader.readInt64("period", options.period, 1, max);
    reader.readDouble("target_ci", options.targetCi, 0.0,
                      std::numeric_limits<double>::max());
    reader.finish();
    options.validate();
    return options;
}

Json
toJson(const SimOptions &options)
{
    Json doc = Json::object();
    doc.set("arch", toJson(options.arch));
    doc.set("max_instructions", options.maxInstructions);
    doc.set("record_trace", options.recordTrace);
    doc.set("record_breakdown", options.recordBreakdown);
    // Omitted when exact, so exact-mode documents — and everything
    // fingerprinted from them (shard manifests, cache keys) — are
    // byte-identical to pre-estimator output.
    if (options.estimator.mode != estimate::EstimatorMode::Exact)
        doc.set("estimator", toJson(options.estimator));
    return doc;
}

SimOptions
simOptionsFromJson(const Json &doc)
{
    SimOptions options;
    ObjectReader reader(doc, "options");
    if (const Json *arch = reader.find("arch"))
        options.arch = archConfigFromJson(*arch);
    reader.readInt64("max_instructions", options.maxInstructions, 0,
                     std::numeric_limits<std::int64_t>::max());
    reader.readBool("record_trace", options.recordTrace);
    reader.readBool("record_breakdown", options.recordBreakdown);
    if (const Json *estimator = reader.find("estimator"))
        options.estimator = estimatorOptionsFromJson(*estimator);
    reader.finish();
    options.arch.validate();
    return options;
}

Json
toJson(const LatencySplit &split)
{
    Json doc = Json::object();
    doc.set("load", split.load);
    doc.set("store", split.store);
    doc.set("seek", split.seek);
    doc.set("pick", split.pick);
    doc.set("align", split.align);
    doc.set("surgery", split.surgery);
    doc.set("compute", split.compute);
    doc.set("magic_stall", split.magicStall);
    doc.set("sk_wait", split.skWait);
    return doc;
}

LatencySplit
latencySplitFromJson(const Json &doc)
{
    LatencySplit split;
    ObjectReader reader(doc, "split");
    const std::int64_t max = std::numeric_limits<std::int64_t>::max();
    reader.readInt64("load", split.load, 0, max);
    reader.readInt64("store", split.store, 0, max);
    reader.readInt64("seek", split.seek, 0, max);
    reader.readInt64("pick", split.pick, 0, max);
    reader.readInt64("align", split.align, 0, max);
    reader.readInt64("surgery", split.surgery, 0, max);
    reader.readInt64("compute", split.compute, 0, max);
    reader.readInt64("magic_stall", split.magicStall, 0, max);
    reader.readInt64("sk_wait", split.skWait, 0, max);
    reader.finish();
    return split;
}

Json
toJson(const std::vector<OpcodeSplit> &breakdown)
{
    Json doc = Json::array();
    for (const OpcodeSplit &row : breakdown) {
        Json entry = Json::object();
        entry.set("op", mnemonic(row.op));
        entry.set("count", row.count);
        entry.set("beats", row.beats);
        entry.set("split", toJson(row.split));
        doc.push(std::move(entry));
    }
    return doc;
}

std::vector<OpcodeSplit>
breakdownFromJson(const Json &doc)
{
    LSQCA_REQUIRE(doc.isArray(), "breakdown must be an array");
    std::vector<OpcodeSplit> breakdown;
    for (const Json &entryDoc : doc.items()) {
        ObjectReader reader(entryDoc, "breakdown entry");
        OpcodeSplit row;
        const Json &op = reader.require("op");
        LSQCA_REQUIRE(op.isString(),
                      "breakdown entry.op must be a string");
        row.op = opcodeFromMnemonic(op.asString());
        const std::int64_t max =
            std::numeric_limits<std::int64_t>::max();
        reader.readInt64("count", row.count, 0, max);
        reader.readInt64("beats", row.beats, 0, max);
        row.split = latencySplitFromJson(reader.require("split"));
        reader.finish();
        breakdown.push_back(row);
    }
    return breakdown;
}

Json
toJson(const TranslateOptions &options)
{
    Json doc = Json::object();
    doc.set("in_memory_ops", options.inMemoryOps);
    doc.set("cr_slots", options.crSlots);
    return doc;
}

void
applyTranslatePatch(TranslateOptions &options, const Json &patch)
{
    ObjectReader reader(patch, "translate");
    reader.readBool("in_memory_ops", options.inMemoryOps);
    reader.readInt32("cr_slots", options.crSlots, 2,
                     std::numeric_limits<std::int32_t>::max());
    reader.finish();
}

TranslateOptions
translateOptionsFromJson(const Json &doc)
{
    TranslateOptions options;
    applyTranslatePatch(options, doc);
    return options;
}

} // namespace lsqca::api
