#include "arch/msf.h"

#include <algorithm>

namespace lsqca {

MagicSource::MagicSource(std::int32_t factories, std::int32_t buffer_cap,
                         std::int32_t period, std::int32_t transfer,
                         bool warm_start, bool instant)
    : factories_(factories), bufferCap_(buffer_cap), period_(period),
      transfer_(transfer), warm_(warm_start), instant_(instant)
{
    LSQCA_REQUIRE(factories >= 1, "MagicSource needs >= 1 factory");
    LSQCA_REQUIRE(buffer_cap >= 1, "MagicSource needs >= 1 buffer slot");
    LSQCA_REQUIRE(period >= 1, "MagicSource period must be positive");
    LSQCA_REQUIRE(transfer >= 0, "MagicSource transfer must be >= 0");
}

std::int64_t
MagicSource::deliveryTime(std::int64_t k)
{
    if (warm_ && k < bufferCap_)
        return 0; // pre-filled buffer at t = 0
    std::int64_t prev_factory;
    if (k >= factories_) {
        prev_factory = dHistory_.front();
    } else {
        // Factory's first state after a cold start (or after the warm
        // prefill was consumed faster than it could be produced).
        prev_factory = 0;
    }
    std::int64_t ready = prev_factory + period_;
    if (k >= bufferCap_)
        ready = std::max(ready, cHistory_.front());
    return ready;
}

MagicSource::Grant
MagicSource::acquire(std::int64_t req)
{
    LSQCA_REQUIRE(req >= 0, "negative request time");
    if (instant_)
        return {req, req};
    const std::int64_t k = consumed_;
    const std::int64_t ready = deliveryTime(k);
    const std::int64_t start = std::max(req, ready);
    stallBeats_ += std::max<std::int64_t>(0, ready - req);

    dHistory_.push_back(std::max(ready, std::int64_t{0}));
    if (static_cast<std::int64_t>(dHistory_.size()) > factories_)
        dHistory_.pop_front();
    cHistory_.push_back(start);
    if (static_cast<std::int64_t>(cHistory_.size()) > bufferCap_)
        cHistory_.pop_front();

    ++consumed_;
    return {start, start + transfer_};
}

} // namespace lsqca
