#include "arch/floorplan.h"

#include <cmath>

#include "common/error.h"

namespace lsqca {

std::int64_t
bankCapacity(std::int64_t sam_qubits, std::int32_t banks,
             std::int32_t bank_index)
{
    LSQCA_REQUIRE(banks >= 1 && bank_index >= 0 && bank_index < banks,
                  "bank index out of range");
    const std::int64_t base = sam_qubits / banks;
    return base + (bank_index < sam_qubits % banks ? 1 : 0);
}

BankShape
bankShape(const ArchConfig &config, std::int64_t sam_qubits,
          std::int32_t bank_index)
{
    const std::int64_t cap = bankCapacity(sam_qubits, config.banks,
                                          bank_index);
    BankShape shape;
    shape.capacity = static_cast<std::int32_t>(cap);
    if (cap == 0)
        return shape;
    if (config.sam == SamKind::Point) {
        // capacity + 1 cells (data + scan), squarest grid covering them.
        const auto cells = cap + 1;
        auto rows = static_cast<std::int32_t>(
            std::ceil(std::sqrt(static_cast<double>(cells))));
        shape.rows = rows;
        shape.cols = static_cast<std::int32_t>((cells + rows - 1) / rows);
    } else {
        // Data grid L x L or L x (L + 1), whichever is tightest
        // (Sec. VI-A), plus one scan row.
        auto side = static_cast<std::int32_t>(
            std::floor(std::sqrt(static_cast<double>(cap))));
        std::int32_t data_rows;
        std::int32_t cols;
        if (static_cast<std::int64_t>(side) * side >= cap) {
            data_rows = side;
            cols = side;
        } else if (static_cast<std::int64_t>(side) * (side + 1) >= cap) {
            data_rows = side;
            cols = side + 1;
        } else {
            data_rows = side + 1;
            cols = side + 1;
        }
        shape.rows = data_rows + 1; // scan row
        shape.cols = cols;
    }
    return shape;
}

FloorplanStats
floorplanStats(const ArchConfig &config, std::int64_t data_qubits,
               std::int64_t conventional_qubits)
{
    LSQCA_REQUIRE(conventional_qubits >= 0 &&
                      conventional_qubits <= data_qubits,
                  "conventional qubits exceed data qubits");
    FloorplanStats stats;
    stats.dataQubits = data_qubits;
    if (config.sam == SamKind::Conventional) {
        stats.conventionalCells = 2 * data_qubits;
        stats.totalCells = stats.conventionalCells;
        return stats;
    }

    const std::int64_t sam_qubits = data_qubits - conventional_qubits;
    stats.conventionalCells = 2 * conventional_qubits;
    if (sam_qubits > 0) {
        std::int32_t tallest = 0;
        for (std::int32_t b = 0; b < config.banks; ++b) {
            const BankShape shape = bankShape(config, sam_qubits, b);
            if (config.sam == SamKind::Point) {
                // Trimmed accounting: exactly capacity + 1 cells.
                stats.samCells += shape.capacity + 1;
            } else {
                stats.samCells +=
                    static_cast<std::int64_t>(shape.rows) * shape.cols;
            }
            tallest = std::max(tallest, shape.rows);
        }
        if (config.sam == SamKind::Point) {
            // Two columns of three cells (Fig. 10a); a second bank
            // attaches to the far side without growing the CR.
            stats.crCells = 6;
        } else {
            // CR spans the SAM height (Fig. 10b): two columns as tall as
            // the tallest bank stack (banks pair up left/right of CR).
            const std::int32_t stacks = (config.banks + 1) / 2;
            stats.crCells =
                2 * static_cast<std::int64_t>(tallest) * stacks;
        }
    }
    stats.totalCells =
        stats.samCells + stats.crCells + stats.conventionalCells;
    return stats;
}

std::vector<FloorplanCatalogueEntry>
floorplanCatalogue()
{
    return {
        {"1/4-filling (Beverland et al.)", 1.0 / 4.0, 1},
        {"4/9-filling (Chamberland-Campbell)", 4.0 / 9.0, 1},
        {"1/2-filling (Beverland et al.)", 1.0 / 2.0, 1},
        {"2/3-filling (Lee et al.)", 2.0 / 3.0, 3},
        {"LSQCA line-SAM (asymptotic)", 0.90, -1},
        {"LSQCA point-SAM (asymptotic)", 1.00, -1},
    };
}

} // namespace lsqca
