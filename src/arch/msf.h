#ifndef LSQCA_ARCH_MSF_H
#define LSQCA_ARCH_MSF_H

/**
 * @file
 * Magic-state factory model (Litinski design, Sec. VI-A): each factory
 * emits one distilled state per period into a shared bounded buffer;
 * production stalls while the buffer is full.
 */

#include <cstdint>
#include <deque>

#include "common/error.h"

namespace lsqca {

/**
 * Deterministic producer/consumer model of the MSF pool.
 *
 * State k is delivered to the buffer at
 *   d_k = max(d_{k-f} + period, c_{k-B})
 * (f factories, buffer capacity B, c = consumption times), with the
 * first B states available at t = 0 when warm-started. Consumption is
 * in program order, matching the in-order scheduler.
 */
class MagicSource
{
  public:
    /** A granted magic state: wait until @c start, in CR at @c end. */
    struct Grant
    {
        std::int64_t start;
        std::int64_t end;
    };

    MagicSource(std::int32_t factories, std::int32_t buffer_cap,
                std::int32_t period, std::int32_t transfer,
                bool warm_start, bool instant);

    /**
     * Consume the next magic state, requested no earlier than @p req.
     * Monotonically increasing @p req values are required (in-order
     * issue). @return the wait-resolved transfer window.
     */
    Grant acquire(std::int64_t req);

    /** States consumed so far. */
    std::int64_t consumed() const { return consumed_; }

    /** Beats spent waiting on an empty buffer so far. */
    std::int64_t stallBeats() const { return stallBeats_; }

  private:
    std::int64_t deliveryTime(std::int64_t k);

    std::int32_t factories_;
    std::int32_t bufferCap_;
    std::int32_t period_;
    std::int32_t transfer_;
    bool warm_;
    bool instant_;
    std::int64_t consumed_ = 0;
    std::int64_t stallBeats_ = 0;
    std::deque<std::int64_t> dHistory_; ///< last `factories_` deliveries
    std::deque<std::int64_t> cHistory_; ///< last `bufferCap_` consumptions
};

} // namespace lsqca

#endif // LSQCA_ARCH_MSF_H
