#include "arch/point_sam.h"

#include <cmath>

#include "common/error.h"

namespace lsqca {
namespace {

std::int32_t
gridRowsFor(std::int32_t capacity)
{
    return static_cast<std::int32_t>(
        std::ceil(std::sqrt(static_cast<double>(capacity + 1))));
}

std::int32_t
gridColsFor(std::int32_t capacity, std::int32_t rows)
{
    return static_cast<std::int32_t>((capacity + 1 + rows - 1) / rows);
}

} // namespace

PointSamBank::PointSamBank(std::int32_t capacity, const Latencies &lat)
    : capacity_(capacity), lat_(lat),
      grid_(gridRowsFor(capacity), gridColsFor(capacity,
                                               gridRowsFor(capacity)))
{
    LSQCA_REQUIRE(capacity >= 1, "point-SAM bank needs capacity >= 1");
    port_ = {grid_.rows() / 2, 0};
    scan_ = port_;
}

void
PointSamBank::placeInitial(const std::vector<QubitId> &vars)
{
    LSQCA_REQUIRE(static_cast<std::int32_t>(vars.size()) <= capacity_,
                  "point-SAM bank over capacity");
    std::size_t next = 0;
    for (std::int32_t r = 0; r < grid_.rows() && next < vars.size(); ++r) {
        for (std::int32_t c = 0; c < grid_.cols() && next < vars.size();
             ++c) {
            const Coord cell{r, c};
            if (cell == port_)
                continue; // the scan cell's initial position stays empty
            grid_.place(vars[next], cell);
            homeSlot(vars[next]) = cell;
            ++next;
        }
    }
    LSQCA_ASSERT(next == vars.size(), "initial placement did not fit");
}

Coord &
PointSamBank::homeSlot(QubitId q)
{
    LSQCA_ASSERT(q >= 0, "invalid qubit id");
    const auto idx = static_cast<std::size_t>(q);
    if (idx >= homes_.size())
        homes_.resize(idx + 1, Coord{-1, -1});
    return homes_[idx];
}

std::int64_t
PointSamBank::pickCost(const Coord &from, const Coord &to) const
{
    const std::int32_t dr = std::abs(from.row - to.row);
    const std::int32_t dc = std::abs(from.col - to.col);
    const std::int32_t diag = std::min(dr, dc);
    const std::int32_t straight = std::max(dr, dc) - diag;
    const bool two_empty = grid_.emptyCount() >= 2;
    const std::int64_t diag_cost =
        two_empty ? lat_.pickDiagonal2 : lat_.pickDiagonal1;
    const std::int64_t straight_cost =
        two_empty ? lat_.pickStraight2 : lat_.pickStraight1;
    return diag * diag_cost + straight * straight_cost;
}

std::int64_t
PointSamBank::seekCost(QubitId q) const
{
    const Coord pos = grid_.locate(q);
    const std::int64_t dist = manhattan(scan_, pos);
    return std::max<std::int64_t>(0, dist - 1) * lat_.move;
}

void
PointSamBank::commitSeek(QubitId q)
{
    scan_ = grid_.locate(q);
}

std::int64_t
PointSamBank::loadCost(QubitId q) const
{
    const Coord pos = grid_.locate(q);
    return seekCost(q) + pickCost(pos, port_) + lat_.move;
}

void
PointSamBank::commitLoad(QubitId q)
{
    grid_.remove(q);
    scan_ = port_;
}

Coord
PointSamBank::homeOrNearest(QubitId q) const
{
    if (homeCache_.q == q && homeCache_.version == grid_.version())
        return homeCache_.dest;
    LSQCA_ASSERT(q >= 0 &&
                     static_cast<std::size_t>(q) < homes_.size() &&
                     homes_[static_cast<std::size_t>(q)].row >= 0,
                 "qubit has no home cell in bank");
    Coord dest = homes_[static_cast<std::size_t>(q)];
    if (!grid_.isEmptyCell(dest)) {
        const auto near = grid_.nearestEmpty(dest);
        LSQCA_ASSERT(near.has_value(), "point-SAM bank is full");
        dest = *near;
    }
    homeCache_ = {grid_.version(), q, dest};
    return dest;
}

Coord
PointSamBank::storeDestination(QubitId q, bool locality) const
{
    if (!locality)
        return homeOrNearest(q);
    // Locality-aware: the newest qubit lands right at the port; older
    // occupants slide one step outward (makeRoomAt at commit).
    return port_;
}

std::int64_t
PointSamBank::storeCost(QubitId q, bool locality) const
{
    const Coord dest = storeDestination(q, locality);
    return lat_.move + pickCost(port_, dest);
}

Coord
PointSamBank::commitStore(QubitId q, bool locality)
{
    const Coord dest = storeDestination(q, locality);
    grid_.makeRoomAt(dest);
    grid_.place(q, dest);
    Coord &home = homeSlot(q);
    if (home.row < 0)
        home = dest;
    scan_ = dest; // the escorting hole ends next to the stored cell
    return dest;
}

std::int64_t
PointSamBank::fetchToPortCost(QubitId q) const
{
    const Coord pos = grid_.locate(q);
    return seekCost(q) + pickCost(pos, port_);
}

void
PointSamBank::commitFetchToPort(QubitId q)
{
    // The fetched qubit takes the port cell; the previous occupant (and
    // the chain behind it) slides one step toward the freed cell — the
    // LRU-like stack that keeps the hot working set port-adjacent.
    grid_.remove(q);
    grid_.makeRoomAt(port_);
    grid_.place(q, port_);
    scan_ = port_;
}

} // namespace lsqca
