#ifndef LSQCA_ARCH_CONFIG_H
#define LSQCA_ARCH_CONFIG_H

/**
 * @file
 * Architecture configuration: floorplan kind, SAM banking, MSF sizing,
 * primitive-operation latencies (Fig. 4 / Table I), and the optimization
 * toggles of Sec. V.
 */

#include <cstdint>
#include <string>

namespace lsqca {

/** Floorplan families evaluated in the paper. */
enum class SamKind : std::uint8_t
{
    Point,        ///< point-SAM: single scan cell (Sec. IV-C2)
    Line,         ///< line-SAM: scan line (Sec. IV-C3)
    Conventional, ///< 1/2-density unit-access baseline (Sec. VI-A)
};

/** Human-readable floorplan name. */
const char *samKindName(SamKind kind);

/** Inverse of samKindName. @throws ConfigError on unknown names. */
SamKind samKindFromName(const std::string &name);

/**
 * Initial data layout inside a SAM bank (the paper's "strategic data
 * allocation" future-work axis, Sec. I).
 */
enum class PlacementPolicy : std::uint8_t
{
    /** Variables fill the grid in index order (the paper's baseline). */
    RowMajor,
    /**
     * Registers are interleaved bit-wise: bit i of every program
     * register lands in the same grid neighborhood, so the working set
     * of bit-sliced arithmetic (a_i, b_i, carry_i, ...) starts
     * co-located.
     */
    Interleaved,
};

/** Human-readable placement-policy name. */
const char *placementPolicyName(PlacementPolicy policy);

/** Inverse of placementPolicyName. @throws ConfigError. */
PlacementPolicy placementPolicyFromName(const std::string &name);

/**
 * Primitive-operation latencies in code beats (DESIGN.md §4.1).
 * Defaults encode Fig. 4 and Table I; tests pin them.
 */
struct Latencies
{
    std::int32_t hadamard = 3;      ///< HD (Fig. 4c)
    std::int32_t phase = 2;         ///< PH (Fig. 4b)
    std::int32_t surgery = 1;       ///< MXX/MZZ merge+split (Fig. 4a)
    std::int32_t move = 1;          ///< adjacent patch move (Fig. 4d)
    std::int32_t longMove = 2;      ///< expand+contract along a path (4e)
    std::int32_t pickDiagonal1 = 6; ///< point-SAM diagonal, one empty
    std::int32_t pickStraight1 = 5; ///< point-SAM straight, one empty
    std::int32_t pickDiagonal2 = 4; ///< point-SAM diagonal, two empties
    std::int32_t pickStraight2 = 3; ///< point-SAM straight, two empties
    std::int32_t msfPeriod = 15;    ///< beats per magic state per factory
    std::int32_t magicTransfer = 1; ///< MSF buffer -> CR port
    std::int32_t skWait = 0;        ///< decoder wait charged by SK
};

/** Full architecture configuration for one simulation. */
struct ArchConfig
{
    SamKind sam = SamKind::Point;
    std::int32_t banks = 1;       ///< SAM bank count (point: 1-2)
    std::int32_t factories = 1;   ///< MSF count
    std::int32_t bufferCap = -1;  ///< magic buffer; -1 = 2 * factories
    std::int32_t crRegisters = 2; ///< CR register cells (paper fixes 2)
    /**
     * Hybrid floorplan ratio f (Sec. VI-C): the ceil(f * n) most
     * referenced variables live in a conventional region attached to CR.
     */
    double hybridFraction = 0.0;
    bool localityStore = true;    ///< Sec. V-B locality-aware store
    bool inMemoryOps = true;      ///< Sec. V-C in-memory operations
    /**
     * Line-SAM row-parallel unitaries (Sec. V-C / Fig. 12c): H or S
     * applied to several cells of one aligned line share a single
     * gap-row window instead of serializing on the scan resource.
     */
    bool rowParallelOps = true;
    /**
     * Extension (off in the paper's evaluation): allow line-SAM lattice
     * surgery directly between two data cells that share a line, instead
     * of round-tripping one operand through the CR. Explored by the
     * ablation bench as a beyond-paper optimization.
     */
    bool directSurgery = false;
    /** Initial data layout inside banks (default: paper baseline). */
    PlacementPolicy placement = PlacementPolicy::RowMajor;
    bool instantMagic = false;    ///< Sec. III-B analysis assumption
    bool warmBuffer = true;       ///< buffer pre-filled at t = 0
    Latencies lat;

    /** Effective buffer capacity (resolves the -1 default). */
    std::int32_t effectiveBufferCap() const;

    /** Short identifier, e.g. "point#2" or "conventional". */
    std::string label() const;

    /** Throws ConfigError on invalid combinations. */
    void validate() const;
};

} // namespace lsqca

#endif // LSQCA_ARCH_CONFIG_H
