#ifndef LSQCA_ARCH_FLOORPLAN_H
#define LSQCA_ARCH_FLOORPLAN_H

/**
 * @file
 * Floorplan cell accounting and memory-density computation.
 *
 * Density is program data qubits over total logical cells (SAM banks +
 * CR + any hybrid conventional region), with MSFs excluded as in
 * Sec. VI-A. Also provides the Fig. 7 catalogue of conventional
 * floorplan densities for reference.
 */

#include <cstdint>
#include <vector>

#include "arch/config.h"

namespace lsqca {

/** Rows x cols of one SAM bank's cell grid (including auxiliary cells). */
struct BankShape
{
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    std::int32_t capacity = 0; ///< data qubits this bank holds

    std::int32_t cells() const { return rows * cols; }
};

/** Cell accounting for a full machine instance. */
struct FloorplanStats
{
    std::int64_t dataQubits = 0;         ///< program variables
    std::int64_t samCells = 0;           ///< all bank cells (data + aux)
    std::int64_t crCells = 0;            ///< CR region incl. ports
    std::int64_t conventionalCells = 0;  ///< hybrid region (2 per qubit)
    std::int64_t totalCells = 0;

    double
    density() const
    {
        return totalCells == 0
                   ? 0.0
                   : static_cast<double>(dataQubits) /
                         static_cast<double>(totalCells);
    }
};

/**
 * Shape of bank @p bank_index when @p sam_qubits variables are dealt
 * round-robin over @p config.banks banks.
 *
 * Point banks use the tightest rows x cols grid with capacity+1 cells
 * (footnote 1: the bottom row is trimmed when n+1 is not square). Line
 * banks use the L x L / L x (L+1) data grid of Sec. VI-A plus one scan
 * row.
 */
BankShape bankShape(const ArchConfig &config, std::int64_t sam_qubits,
                    std::int32_t bank_index);

/** Number of variables dealt to bank @p bank_index. */
std::int64_t bankCapacity(std::int64_t sam_qubits, std::int32_t banks,
                          std::int32_t bank_index);

/**
 * Full cell accounting for @p config hosting @p data_qubits program
 * variables, of which @p conventional_qubits live in the hybrid region.
 */
FloorplanStats floorplanStats(const ArchConfig &config,
                              std::int64_t data_qubits,
                              std::int64_t conventional_qubits);

/** One entry of the Fig. 7 existing-floorplan catalogue. */
struct FloorplanCatalogueEntry
{
    const char *name;
    double density;          ///< data cells / total cells
    std::int32_t accessBeats; ///< worst-case beats to touch any qubit
};

/** The four floorplans of Fig. 7 plus the LSQCA asymptotes. */
std::vector<FloorplanCatalogueEntry> floorplanCatalogue();

} // namespace lsqca

#endif // LSQCA_ARCH_FLOORPLAN_H
