#ifndef LSQCA_ARCH_LINE_SAM_H
#define LSQCA_ARCH_LINE_SAM_H

/**
 * @file
 * Line-SAM bank model (Sec. IV-C3): H data rows and one empty scan row
 * (the "gap") that shifts vertically, one beat per row, until it faces
 * the target's row; the target then moves into the gap and slides along
 * it to the CR with a constant-latency long-range move.
 *
 * The gap is modeled as an index g in [0, H] between data rows: shifting
 * it costs |Δg| beats while data rows keep their logical identity (the
 * physical cells shift; the contents' relative order is preserved).
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/config.h"
#include "geom/grid.h"

namespace lsqca {

/** One line-SAM bank: row-organized occupancy + gap + cost model. */
class LineSamBank
{
  public:
    /**
     * Build a bank for @p capacity qubits with the tightest
     * L x L / L x (L+1) data grid (Sec. VI-A); the gap starts at 0
     * (facing the first row).
     */
    LineSamBank(std::int32_t capacity, const Latencies &lat);

    std::int32_t capacity() const { return capacity_; }
    std::int32_t occupancy() const { return grid_.occupiedCount(); }
    std::int32_t dataRows() const { return grid_.rows(); }
    std::int32_t cols() const { return grid_.cols(); }
    std::int32_t gap() const { return gap_; }
    bool holds(QubitId q) const { return grid_.find(q).has_value(); }
    Coord positionOf(QubitId q) const { return grid_.locate(q); }

    /** Read-only occupancy view (telemetry: initial-layout snapshots). */
    const OccupancyGrid &grid() const { return grid_; }

    /**
     * Bank event hook: forward every data-cell occupy/vacate
     * (commitLoad, commitStore incl. the makeRoomAt insertion) to
     * @p listener; nullptr detaches. Borrowed, not owned. Gap motion
     * is not a cell event — rows keep their logical identity.
     */
    void setCellListener(CellListener *listener)
    {
        grid_.setCellListener(listener);
    }

    /** Place @p vars row-major (their original "home" cells). */
    void placeInitial(const std::vector<QubitId> &vars);

    /** Beats to align the gap next to row @p row. */
    std::int64_t alignCostToRow(std::int32_t row) const;

    /** Beats to align the gap next to @p q's row (in-memory ops). */
    std::int64_t alignCost(QubitId q) const;

    /** Move the gap adjacent to @p q's row. */
    void commitAlign(QubitId q);

    /** Beats to bring @p q from SAM into a CR register cell. */
    std::int64_t loadCost(QubitId q) const;

    /** Apply the load: @p q leaves; the gap faces its old row. */
    void commitLoad(QubitId q);

    /**
     * Beats to store a qubit from CR. Locality-aware stores pick a
     * gap-adjacent row (same line as recently touched qubits) at the
     * CR-nearest free column; otherwise the original home cell.
     */
    std::int64_t storeCost(QubitId q, bool locality) const;

    /** Apply the store; returns the destination cell. */
    Coord commitStore(QubitId q, bool locality);

    /**
     * Whether @p a and @p b can merge directly (ArchConfig::directSurgery
     * extension): same row or vertically adjacent rows, so one gap
     * position touches both.
     */
    bool canDirectSurgery(QubitId a, QubitId b) const;

    /** Gap shifts to reach the surgery position for a direct merge. */
    std::int64_t directSurgeryCost(QubitId a, QubitId b) const;

    /** Park the gap at the direct-surgery position. */
    void commitDirectSurgery(QubitId a, QubitId b);

  private:
    struct StorePlan
    {
        Coord dest;
        std::int64_t shifts;
    };
    StorePlan storePlan(QubitId q, bool locality) const;
    std::int32_t nearerGapSide(std::int32_t row) const;

    std::int32_t capacity_;
    Latencies lat_;
    OccupancyGrid grid_; ///< data rows only; the gap is bookkept aside
    std::int32_t gap_ = 0;
    std::unordered_map<QubitId, Coord> homes_;

    /**
     * Memo for storePlan: storeCost and commitStore ask for the same
     * plan back to back. The plan depends on the grid contents and on
     * the gap position (locality targets the gap-adjacent row, home
     * stores pay gap shifts), so the key is (qubit, locality,
     * OccupancyGrid::version(), gap).
     */
    struct PlanCache
    {
        std::uint64_t version = 0;
        QubitId q = kNoQubit;
        bool locality = false;
        std::int32_t gap = -1;
        StorePlan plan{};
    };
    mutable PlanCache planCache_;
};

} // namespace lsqca

#endif // LSQCA_ARCH_LINE_SAM_H
