#include "arch/config.h"

#include <sstream>

#include "common/error.h"

namespace lsqca {

const char *
samKindName(SamKind kind)
{
    switch (kind) {
      case SamKind::Point: return "point";
      case SamKind::Line: return "line";
      case SamKind::Conventional: return "conventional";
    }
    return "?";
}

SamKind
samKindFromName(const std::string &name)
{
    if (name == "point")
        return SamKind::Point;
    if (name == "line")
        return SamKind::Line;
    if (name == "conventional")
        return SamKind::Conventional;
    throw ConfigError("unknown SAM kind \"" + name +
                      "\" (expected point|line|conventional)");
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::RowMajor: return "row-major";
      case PlacementPolicy::Interleaved: return "interleaved";
    }
    return "?";
}

PlacementPolicy
placementPolicyFromName(const std::string &name)
{
    if (name == "row-major")
        return PlacementPolicy::RowMajor;
    if (name == "interleaved")
        return PlacementPolicy::Interleaved;
    throw ConfigError("unknown placement policy \"" + name +
                      "\" (expected row-major|interleaved)");
}

std::int32_t
ArchConfig::effectiveBufferCap() const
{
    return bufferCap >= 0 ? bufferCap : 2 * factories;
}

std::string
ArchConfig::label() const
{
    std::ostringstream oss;
    oss << samKindName(sam);
    if (sam != SamKind::Conventional) {
        oss << "#" << banks;
        if (hybridFraction > 0.0)
            oss << "+hybrid" << hybridFraction;
    }
    return oss.str();
}

void
ArchConfig::validate() const
{
    LSQCA_REQUIRE(banks >= 1, "bank count must be >= 1");
    LSQCA_REQUIRE(sam != SamKind::Point || banks <= 2,
                  "point-SAM supports at most two banks (Sec. V-A)");
    LSQCA_REQUIRE(factories >= 1, "factory count must be >= 1");
    LSQCA_REQUIRE(crRegisters >= 2,
                  "CR needs at least two register cells");
    LSQCA_REQUIRE(hybridFraction >= 0.0 && hybridFraction <= 1.0,
                  "hybrid fraction must lie in [0, 1]");
    LSQCA_REQUIRE(lat.msfPeriod >= 1, "MSF period must be positive");
    LSQCA_REQUIRE(lat.move >= 1 && lat.longMove >= 1 && lat.surgery >= 1,
                  "primitive latencies must be positive");
    LSQCA_REQUIRE(effectiveBufferCap() >= 1,
                  "magic buffer needs at least one slot");
}

} // namespace lsqca
