#ifndef LSQCA_ARCH_POINT_SAM_H
#define LSQCA_ARCH_POINT_SAM_H

/**
 * @file
 * Point-SAM bank model (Sec. IV-C2): a near-full occupancy grid with a
 * single auxiliary scan cell. Loads work like a sliding puzzle — seek the
 * scan hole to the target, then pick the target cell toward the port with
 * diagonal/straight compound moves whose cost drops when a second empty
 * cell is available.
 *
 * The model tracks real cell occupancy and a virtual scan-hole position;
 * DESIGN.md §4.2 documents the (small) approximations versus a full
 * sliding-puzzle permutation simulation.
 */

#include <cstdint>
#include <vector>

#include "arch/config.h"
#include "geom/grid.h"

namespace lsqca {

/** One point-SAM bank: occupancy grid + scan cell + cost model. */
class PointSamBank
{
  public:
    /**
     * Build a bank for @p capacity qubits with the squarest grid of at
     * least capacity + 1 cells; the scan cell starts at the port anchor
     * (CR-adjacent column, middle row).
     */
    PointSamBank(std::int32_t capacity, const Latencies &lat);

    std::int32_t capacity() const { return capacity_; }
    std::int32_t occupancy() const { return grid_.occupiedCount(); }
    std::int32_t rows() const { return grid_.rows(); }
    std::int32_t cols() const { return grid_.cols(); }
    Coord scanPosition() const { return scan_; }
    Coord portAnchor() const { return port_; }
    bool holds(QubitId q) const { return grid_.find(q).has_value(); }
    Coord positionOf(QubitId q) const { return grid_.locate(q); }

    /** Read-only occupancy view (telemetry: initial-layout snapshots). */
    const OccupancyGrid &grid() const { return grid_; }

    /**
     * Bank event hook: forward every cell occupy/vacate (commitLoad,
     * commitStore incl. the makeRoomAt hole walk, commitFetchToPort)
     * to @p listener; nullptr detaches. Borrowed, not owned.
     */
    void setCellListener(CellListener *listener)
    {
        grid_.setCellListener(listener);
    }

    /** Place @p vars row-major (their original "home" cells). */
    void placeInitial(const std::vector<QubitId> &vars);

    /** Beats to bring @p q from SAM into a CR register cell. */
    std::int64_t loadCost(QubitId q) const;

    /** Apply the load: @p q leaves the bank; the scan ends at the port. */
    void commitLoad(QubitId q);

    /**
     * Beats to store a qubit from CR into the bank. Locality-aware
     * stores take the empty cell nearest the port; otherwise the
     * original home cell (or nearest empty to it).
     */
    std::int64_t storeCost(QubitId q, bool locality) const;

    /** Apply the store; returns the destination cell. */
    Coord commitStore(QubitId q, bool locality);

    /** Beats for the scan hole to reach @p q (in-memory 1q ops). */
    std::int64_t seekCost(QubitId q) const;

    /** Scan ends adjacent to @p q. */
    void commitSeek(QubitId q);

    /**
     * Beats to drag @p q to the port for an in-memory two-qubit op
     * (a load minus the final CR-entry move, Sec. V-C).
     */
    std::int64_t fetchToPortCost(QubitId q) const;

    /** @p q relocates to the empty cell nearest the port.
     *
     * Unlike line SAM there is no direct data-data surgery in a dense
     * point SAM: two-qubit operands always route via the port (the
     * paper's Sec. V-C: in-memory ops "skip the pick into the CR", not
     * the pick to the port). */
    void commitFetchToPort(QubitId q);

  private:
    Coord homeOrNearest(QubitId q) const;
    Coord storeDestination(QubitId q, bool locality) const;
    std::int64_t pickCost(const Coord &from, const Coord &to) const;

    /** Home cell of @p q; {-1,-1} when never stored (flat by QubitId,
     *  same layout argument as OccupancyGrid::positions_). */
    Coord &homeSlot(QubitId q);

    std::int32_t capacity_;
    Latencies lat_;
    OccupancyGrid grid_;
    Coord scan_;
    Coord port_;
    std::vector<Coord> homes_;

    /**
     * Memo for homeOrNearest: the cost model asks for the same
     * destination twice per store (storeCost then commitStore), and the
     * answer only changes when the grid mutates — keyed on
     * OccupancyGrid::version() so invalidation is exact.
     */
    struct HomeCache
    {
        std::uint64_t version = 0;
        QubitId q = kNoQubit;
        Coord dest;
    };
    mutable HomeCache homeCache_;
};

} // namespace lsqca

#endif // LSQCA_ARCH_POINT_SAM_H
