#include "arch/line_sam.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace lsqca {
namespace {

/** Tightest L x L or L x (L+1) data grid holding @p capacity cells. */
std::pair<std::int32_t, std::int32_t>
dataGridFor(std::int32_t capacity)
{
    auto side = static_cast<std::int32_t>(
        std::floor(std::sqrt(static_cast<double>(capacity))));
    if (static_cast<std::int64_t>(side) * side >= capacity)
        return {side, side};
    if (static_cast<std::int64_t>(side) * (side + 1) >= capacity)
        return {side, side + 1};
    return {side + 1, side + 1};
}

} // namespace

LineSamBank::LineSamBank(std::int32_t capacity, const Latencies &lat)
    : capacity_(capacity), lat_(lat),
      grid_(dataGridFor(capacity).first, dataGridFor(capacity).second)
{
    LSQCA_REQUIRE(capacity >= 1, "line-SAM bank needs capacity >= 1");
}

void
LineSamBank::placeInitial(const std::vector<QubitId> &vars)
{
    LSQCA_REQUIRE(static_cast<std::int32_t>(vars.size()) <= capacity_,
                  "line-SAM bank over capacity");
    std::size_t next = 0;
    for (std::int32_t r = 0; r < grid_.rows() && next < vars.size(); ++r) {
        for (std::int32_t c = 0; c < grid_.cols() && next < vars.size();
             ++c) {
            grid_.place(vars[next], {r, c});
            homes_.emplace(vars[next], Coord{r, c});
            ++next;
        }
    }
    LSQCA_ASSERT(next == vars.size(), "initial placement did not fit");
}

std::int64_t
LineSamBank::alignCostToRow(std::int32_t row) const
{
    // Gap positions adjacent to row r are g == r (above) and g == r + 1
    // (below); each gap shift is one whole-row move (one beat).
    const std::int64_t above = std::abs(gap_ - row);
    const std::int64_t below = std::abs(gap_ - (row + 1));
    return std::min(above, below) * lat_.move;
}

std::int32_t
LineSamBank::nearerGapSide(std::int32_t row) const
{
    return std::abs(gap_ - row) <= std::abs(gap_ - (row + 1)) ? row
                                                              : row + 1;
}

std::int64_t
LineSamBank::alignCost(QubitId q) const
{
    return alignCostToRow(grid_.locate(q).row);
}

void
LineSamBank::commitAlign(QubitId q)
{
    gap_ = nearerGapSide(grid_.locate(q).row);
}

std::int64_t
LineSamBank::loadCost(QubitId q) const
{
    // Align + step into the gap row + long-range slide into the CR.
    return alignCost(q) + lat_.move + lat_.longMove;
}

void
LineSamBank::commitLoad(QubitId q)
{
    const Coord pos = grid_.locate(q);
    gap_ = nearerGapSide(pos.row);
    grid_.remove(q);
}

bool
LineSamBank::canDirectSurgery(QubitId a, QubitId b) const
{
    const std::int32_t ra = grid_.locate(a).row;
    const std::int32_t rb = grid_.locate(b).row;
    return std::abs(ra - rb) <= 1;
}

std::int64_t
LineSamBank::directSurgeryCost(QubitId a, QubitId b) const
{
    const std::int32_t ra = grid_.locate(a).row;
    const std::int32_t rb = grid_.locate(b).row;
    if (ra == rb)
        return alignCostToRow(ra);
    // Adjacent rows: the gap slots exactly between them.
    const std::int32_t between = std::max(ra, rb);
    return std::abs(gap_ - between) * lat_.move;
}

void
LineSamBank::commitDirectSurgery(QubitId a, QubitId b)
{
    const std::int32_t ra = grid_.locate(a).row;
    const std::int32_t rb = grid_.locate(b).row;
    gap_ = ra == rb ? nearerGapSide(ra) : std::max(ra, rb);
}

LineSamBank::StorePlan
LineSamBank::storePlan(QubitId q, bool locality) const
{
    if (planCache_.q == q && planCache_.locality == locality &&
        planCache_.version == grid_.version() && planCache_.gap == gap_)
        return planCache_.plan;
    StorePlan plan;
    if (!locality) {
        const auto it = homes_.find(q);
        LSQCA_ASSERT(it != homes_.end(), "qubit has no home cell in bank");
        if (grid_.isEmptyCell(it->second)) {
            plan = {it->second,
                    alignCostToRow(it->second.row) / lat_.move};
        } else {
            const auto near = grid_.nearestEmpty(it->second);
            LSQCA_ASSERT(near.has_value(), "line-SAM bank is full");
            plan = {*near, alignCostToRow(near->row) / lat_.move};
        }
    } else {
        // Locality-aware: drop into a row adjacent to the current gap
        // (the hot line); the in-flight qubit's hole slides there via
        // the makeRoomAt insertion, so no gap shifts are needed.
        const std::int32_t row =
            gap_ < grid_.rows() ? gap_ : grid_.rows() - 1;
        const auto hole = grid_.nearestEmpty({row, 0});
        LSQCA_ASSERT(hole.has_value(), "line-SAM bank is full");
        plan = {Coord{row, hole->col}, 0};
    }
    planCache_ = {grid_.version(), q, locality, gap_, plan};
    return plan;
}

std::int64_t
LineSamBank::storeCost(QubitId q, bool locality) const
{
    const StorePlan plan = storePlan(q, locality);
    // Slide from the CR along the gap row, then drop into the target
    // row (after any gap shifts).
    return plan.shifts * lat_.move + lat_.longMove + lat_.move;
}

Coord
LineSamBank::commitStore(QubitId q, bool locality)
{
    const StorePlan plan = storePlan(q, locality);
    grid_.makeRoomAt(plan.dest);
    grid_.place(q, plan.dest);
    if (homes_.find(q) == homes_.end())
        homes_.emplace(q, plan.dest);
    gap_ = nearerGapSide(plan.dest.row);
    return plan.dest;
}

} // namespace lsqca
