#ifndef LSQCA_TRANSLATE_TRANSLATE_H
#define LSQCA_TRANSLATE_TRANSLATE_H

/**
 * @file
 * Compilation from Clifford+T circuits to LSQCA object code (Sec. VI-A).
 *
 * Lowering rules:
 *  - Pauli unitaries (X/Y/Z) are absorbed into the Pauli frame and emit
 *    nothing ("we ignore instructions with negligible latency").
 *  - Single-qubit gates use in-memory instructions (HD.M / PH.M /
 *    PZ.M / PP.M / MX.M / MZ.M).
 *  - T / Tdg become the teleportation gadget:
 *    PM, MZZ.M (magic x target, in-memory), MX.C, SK, PH.M.
 *  - CX / CZ become the optimized two-memory-operand instructions whose
 *    operand placement the machine schedules at run time.
 *  - Classically-conditioned gates are guarded by SK.
 *
 * The emitted Program never references cell positions: it is portable
 * across every SAM instance (Sec. VII-B).
 */

#include "circuit/circuit.h"
#include "isa/program.h"

namespace lsqca {

/**
 * Translation options. Like SimOptions (sim/simulator.h), this is a
 * plain options struct with JSON round-trip support in
 * api/serialize.*; sweep specs patch it per axis (docs/SPEC.md).
 */
struct TranslateOptions
{
    /**
     * Emit in-memory instruction forms (paper default). When false,
     * every gate is bracketed by explicit LD/ST — the Sec. V-C
     * ablation (pair with ArchConfig::inMemoryOps = false so the
     * machine costs the round trips it is given).
     */
    bool inMemoryOps = true;

    /**
     * Virtual CR slots to round-robin magic states over (>= 2). A
     * translation-time schedule knob: it spreads consecutive
     * T-gadgets across CR names so independent gadgets can overlap.
     * Distinct from ArchConfig::crRegisters, the *machine's* CR cell
     * count (the paper fixes 2) — the simulator serializes on slot
     * names, so values beyond crRegisters model an optimistic wider
     * CR.
     */
    std::int32_t crSlots = 2;
};

/**
 * Translate a lowered (Clifford+T) circuit into an LSQCA program.
 * Registers and classical bits map index-for-index onto variables and
 * values. @throws ConfigError if the circuit has non-Clifford+T gates.
 */
Program translate(const Circuit &circuit,
                  const TranslateOptions &options = {});

} // namespace lsqca

#endif // LSQCA_TRANSLATE_TRANSLATE_H
