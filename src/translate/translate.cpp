#include "translate/translate.h"

#include "circuit/lowering.h"
#include "common/error.h"

namespace lsqca {
namespace {

/** Stateful emitter walking one circuit. */
class Emitter
{
  public:
    Emitter(const Circuit &circuit, const TranslateOptions &options)
        : circ_(circuit), opts_(options),
          prog_(circuit.numQubits())
    {
        LSQCA_REQUIRE(opts_.crSlots >= 2,
                      "translation needs at least two CR slots");
        for (const auto &r : circ_.registers())
            prog_.addRegister(r.name, r.first, r.size);
        // Circuit classical bits map 1:1 onto the first program values.
        for (std::int32_t i = 0; i < circ_.numClassicalBits(); ++i)
            prog_.newValue();
    }

    Program
    run()
    {
        for (const auto &g : circ_.gates()) {
            LSQCA_REQUIRE(isCliffordTGate(g.kind),
                          std::string("translate: non-Clifford+T gate: ") +
                              gateName(g.kind));
            emitGate(g);
        }
        return std::move(prog_);
    }

  private:
    /** Next CR slot in round-robin order. */
    std::int32_t
    nextSlot()
    {
        const std::int32_t slot = rrSlot_;
        rrSlot_ = (rrSlot_ + 1) % opts_.crSlots;
        return slot;
    }

    void
    emit(Instruction inst)
    {
        prog_.append(inst);
    }

    /** Guard the following instruction on classical bit @p cond. */
    void
    guard(ClassicalBit cond)
    {
        if (cond == kNoBit)
            return;
        Instruction sk;
        sk.op = Opcode::SK;
        sk.v0 = cond;
        emit(sk);
    }

    /** One-memory-operand instruction. */
    void
    emitM(Opcode op, QubitId m, std::int32_t v = -1)
    {
        Instruction inst;
        inst.op = op;
        inst.m0 = m;
        inst.v0 = v;
        emit(inst);
    }

    /** One-register-operand instruction. */
    void
    emitC(Opcode op, std::int32_t c, std::int32_t v = -1)
    {
        Instruction inst;
        inst.op = op;
        inst.c0 = c;
        inst.v0 = v;
        emit(inst);
    }

    void
    emitLoad(QubitId m, std::int32_t c)
    {
        Instruction inst;
        inst.op = Opcode::LD;
        inst.m0 = m;
        inst.c0 = c;
        emit(inst);
    }

    void
    emitStore(std::int32_t c, QubitId m)
    {
        Instruction inst;
        inst.op = Opcode::ST;
        inst.m0 = m;
        inst.c0 = c;
        emit(inst);
    }

    /** In-CR single-qubit op bracketed by LD/ST (ablation path). */
    void
    emitLoaded1q(Opcode op_c, QubitId q, std::int32_t v = -1)
    {
        const std::int32_t slot = nextSlot();
        emitLoad(q, slot);
        emitC(op_c, slot, v);
        emitStore(slot, q);
    }

    /**
     * T / Tdg teleportation gadget. Tdg differs from T only in the Pauli
     * frame of the correction, so both emit the same instruction shape.
     */
    void
    emitTGadget(QubitId q)
    {
        const std::int32_t magic_slot = nextSlot();
        const std::int32_t v_zz = prog_.newValue();
        const std::int32_t v_x = prog_.newValue();
        if (opts_.inMemoryOps) {
            emitC(Opcode::PM, magic_slot);
            Instruction zz;
            zz.op = Opcode::MZZ_M;
            zz.c0 = magic_slot;
            zz.m0 = q;
            zz.v0 = v_zz;
            emit(zz);
            emitC(Opcode::MX_C, magic_slot, v_x);
            guard(v_zz);
            emitM(Opcode::PH_M, q);
        } else {
            const std::int32_t target_slot = nextSlot();
            emitLoad(q, target_slot);
            emitC(Opcode::PM, magic_slot);
            Instruction zz;
            zz.op = Opcode::MZZ_C;
            zz.c0 = target_slot;
            zz.c1 = magic_slot;
            zz.v0 = v_zz;
            emit(zz);
            emitC(Opcode::MX_C, magic_slot, v_x);
            guard(v_zz);
            emitC(Opcode::PH_C, target_slot);
            emitStore(target_slot, q);
        }
    }

    void
    emitGate(const Gate &g)
    {
        const QubitId q0 = g.qubits[0];
        const QubitId q1 = g.qubits[1];
        switch (g.kind) {
          case GateKind::X:
          case GateKind::Y:
          case GateKind::Z:
            // Pauli frame update: no instruction, no latency.
            return;
          case GateKind::H:
            guard(g.condBit);
            if (opts_.inMemoryOps)
                emitM(Opcode::HD_M, q0);
            else
                emitLoaded1q(Opcode::HD_C, q0);
            return;
          case GateKind::S:
          case GateKind::Sdg:
            // Sdg == S followed by a frame Z.
            guard(g.condBit);
            if (opts_.inMemoryOps)
                emitM(Opcode::PH_M, q0);
            else
                emitLoaded1q(Opcode::PH_C, q0);
            return;
          case GateKind::T:
          case GateKind::Tdg:
            LSQCA_REQUIRE(g.condBit == kNoBit,
                          "conditioned T is not supported");
            emitTGadget(q0);
            return;
          case GateKind::CX:
          case GateKind::CZ: {
            guard(g.condBit);
            Instruction inst;
            inst.op =
                g.kind == GateKind::CX ? Opcode::CX : Opcode::CZ;
            inst.m0 = q0;
            inst.m1 = q1;
            emit(inst);
            return;
          }
          case GateKind::PrepZ:
            guard(g.condBit);
            emitM(Opcode::PZ_M, q0);
            return;
          case GateKind::PrepX:
            guard(g.condBit);
            emitM(Opcode::PP_M, q0);
            return;
          case GateKind::MeasZ:
            guard(g.condBit);
            emitM(Opcode::MZ_M, q0, g.cbit);
            return;
          case GateKind::MeasX:
            guard(g.condBit);
            emitM(Opcode::MX_M, q0, g.cbit);
            return;
          default:
            throw ConfigError(std::string("translate: unsupported gate ") +
                              gateName(g.kind));
        }
    }

    const Circuit &circ_;
    TranslateOptions opts_;
    Program prog_;
    std::int32_t rrSlot_ = 0;
};

} // namespace

Program
translate(const Circuit &circuit, const TranslateOptions &options)
{
    return Emitter(circuit, options).run();
}

} // namespace lsqca
