#ifndef LSQCA_BENCH_BENCH_UTIL_H
#define LSQCA_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared plumbing for the figure/table benches: benchmark loading with
 * steady-state prefixes, standard machine configurations, and CSV
 * mirroring.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "arch/config.h"
#include "circuit/lowering.h"
#include "common/error.h"
#include "common/table.h"
#include "isa/program.h"
#include "sim/simulator.h"
#include "sweep/sweep.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca::bench {

/** A translated benchmark plus its simulation prefix budget. */
struct Workload
{
    std::string name;
    Program program;
    /** Steady-state instruction prefix (0 = simulate everything). */
    std::int64_t prefix = 0;
};

/**
 * The paper's seven-benchmark suite, lowered and translated. Large
 * iterative programs (multiplier, square_root, SELECT) get steady-state
 * prefixes unless @p full — their loops are periodic, so CPI and
 * overhead converge long before the end (EXPERIMENTS.md validates the
 * prefix choice).
 */
inline std::vector<Workload>
paperWorkloads(bool full)
{
    const std::int64_t kPrefix = full ? 0 : 60'000;
    std::vector<Workload> loads;
    auto add = [&](const char *name, const Circuit &circ,
                   std::int64_t prefix) {
        loads.push_back(
            {name, translate(lowerToCliffordT(circ)), prefix});
    };
    add("adder", makeAdder(), 0);
    add("bv", makeBernsteinVazirani(), 0);
    add("cat", makeCat(), 0);
    add("ghz", makeGhz(), 0);
    add("multiplier", makeMultiplier(), kPrefix);
    add("square_root", makeSquareRoot(), kPrefix);
    add("SELECT", makeSelect({11, 0}), kPrefix);
    return loads;
}

/** Simulate @p load under @p arch honouring its prefix budget. */
inline SimResult
run(const Workload &load, const ArchConfig &arch)
{
    SimOptions opts;
    opts.arch = arch;
    opts.maxInstructions = load.prefix;
    return simulate(load.program, opts);
}

/** The bar configurations of Fig. 13 (left-to-right). */
inline std::vector<ArchConfig>
fig13Machines(std::int32_t factories)
{
    std::vector<ArchConfig> machines;
    auto push = [&](SamKind sam, std::int32_t banks) {
        ArchConfig cfg;
        cfg.sam = sam;
        cfg.banks = banks;
        cfg.factories = factories;
        machines.push_back(cfg);
    };
    push(SamKind::Point, 1);
    push(SamKind::Point, 2);
    push(SamKind::Line, 1);
    push(SamKind::Line, 2);
    push(SamKind::Line, 4);
    push(SamKind::Conventional, 1);
    return machines;
}

/**
 * Parse "--csv <dir>", "--full", "--threads N", "--out <dir>", and
 * "--smoke" from argv.
 */
struct BenchArgs
{
    std::optional<std::string> csvDir;
    bool full = false;
    /** Sweep workers; 0 = hardware concurrency. */
    std::int32_t threads = 0;
    /** Where BENCH_*.json lands. */
    std::string outDir = "bench/out";
    /** Reduced-size run for CI (micro_kernels). */
    bool smoke = false;
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc)
            args.csvDir = argv[++i];
        else if (std::strcmp(argv[i], "--full") == 0)
            args.full = true;
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            args.threads =
                static_cast<std::int32_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            args.outDir = argv[++i];
        else if (std::strcmp(argv[i], "--smoke") == 0)
            args.smoke = true;
        else
            std::cerr << "unknown argument: " << argv[i]
                      << " (supported: --csv <dir>, --full, --threads N,"
                         " --out <dir>, --smoke)\n";
    }
    return args;
}

/**
 * Job-list builder + result cursor for porting the serial figure loops
 * onto SweepEngine: phase one walks the bench's nested loops pushing
 * jobs, the engine fans them out, and phase two re-walks the same loops
 * consuming results in the same order. The cursor asserts the two walks
 * stayed aligned.
 */
class Sweep
{
  public:
    /** Queue one job; @p prefix caps instructions (0 = whole program). */
    void
    add(std::string name, const Program &program, const ArchConfig &arch,
        std::int64_t prefix = 0)
    {
        SweepJob job;
        job.name = std::move(name);
        job.program = &program;
        job.options.arch = arch;
        job.options.maxInstructions = prefix;
        jobs_.push_back(std::move(job));
    }

    /** Fan all queued jobs across @p threads workers (0 = hardware). */
    void
    run(std::int32_t threads)
    {
        SweepEngine engine({threads});
        report_ = engine.run(jobs_);
        cursor_ = 0;
    }

    /** Next result, in the order add() was called. */
    const SimResult &
    next()
    {
        LSQCA_REQUIRE(cursor_ < report_.results.size(),
                      "sweep cursor ran past the job list");
        return report_.results[cursor_++];
    }

    const std::vector<SweepJob> &jobs() const { return jobs_; }
    const SweepReport &report() const { return report_; }

    /** Write BENCH_<name>.json and log where it landed. */
    void
    writeJson(const std::string &benchName, const BenchArgs &args) const
    {
        const std::string path = writeBenchJson(
            benchName, benchReport(benchName, jobs_, report_),
            args.outDir);
        std::cerr << benchName << ": " << jobs_.size() << " jobs, "
                  << report_.threads << " threads, "
                  << TextTable::num(report_.wallSeconds, 3) << " s -> "
                  << path << "\n";
    }

  private:
    std::vector<SweepJob> jobs_;
    SweepReport report_;
    std::size_t cursor_ = 0;
};

/** Print a table and mirror it to <dir>/<stem>.csv when requested. */
inline void
emit(const TextTable &table, const std::string &title,
     const BenchArgs &args, const std::string &stem)
{
    std::cout << table.render(title) << "\n";
    if (args.csvDir)
        table.writeCsv(*args.csvDir + "/" + stem + ".csv");
}

} // namespace lsqca::bench

#endif // LSQCA_BENCH_BENCH_UTIL_H
