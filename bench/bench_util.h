#ifndef LSQCA_BENCH_BENCH_UTIL_H
#define LSQCA_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared plumbing for the figure/table benches: argument parsing, spec
 * execution through the declarative experiment API (src/api), and CSV
 * mirroring. The figure benches build a SweepSpec (api/paper_specs.h),
 * run it through the same runSpec() entry point the `lsqca` CLI uses,
 * and only keep their table-rendering phase here.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/spec.h"
#include "common/error.h"
#include "common/table.h"
#include "sim/simulator.h"

namespace lsqca::bench {

/**
 * Parse "--csv <dir>", "--full", "--threads N", "--out <dir>",
 * "--smoke", "--shard i/N", "--timeout-seconds S", and
 * "--seed-check <fingerprint>" from argv. Unknown arguments, missing
 * values, and malformed numbers are fatal (exit 2) — a typo must not
 * silently run a different experiment.
 */
struct BenchArgs
{
    std::optional<std::string> csvDir;
    bool full = false;
    /** Sweep workers; 0 = hardware concurrency. */
    std::int32_t threads = 0;
    /** Where BENCH_*.json lands. */
    std::string outDir = "bench/out";
    /** Reduced-size run for CI (micro_kernels). */
    bool smoke = false;
    /** Contiguous sweep slice; tables are skipped when sharded. */
    api::ShardRange shard;
    /** Abort (exit 124) past this wall budget (0 = no limit). */
    double timeoutSeconds = 0.0;
    /** Expected shard fingerprint ("" = unchecked); see docs/SERVICE.md. */
    std::string seedCheck;
};

[[noreturn]] inline void
argError(const std::string &message)
{
    std::cerr << "error: " << message
              << "\n(supported: --csv <dir>, --full, --threads N,"
                 " --out <dir>, --smoke, --shard i/N,"
                 " --timeout-seconds S, --seed-check <fingerprint>)\n";
    std::exit(2);
}

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            argError(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            args.csvDir = value(i);
        } else if (std::strcmp(argv[i], "--full") == 0) {
            args.full = true;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            try {
                args.threads = api::parseThreadCount(value(i));
            } catch (const ConfigError &e) {
                argError(e.what());
            }
        } else if (std::strcmp(argv[i], "--out") == 0) {
            args.outDir = value(i);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            args.smoke = true;
        } else if (std::strcmp(argv[i], "--shard") == 0) {
            try {
                args.shard = api::ShardRange::parse(value(i));
            } catch (const ConfigError &e) {
                argError(e.what());
            }
        } else if (std::strcmp(argv[i], "--timeout-seconds") == 0) {
            try {
                args.timeoutSeconds =
                    api::parseTimeoutSeconds(value(i));
            } catch (const ConfigError &e) {
                argError(e.what());
            }
        } else if (std::strcmp(argv[i], "--seed-check") == 0) {
            try {
                args.seedCheck = api::parseFingerprintArg(value(i));
            } catch (const ConfigError &e) {
                argError(e.what());
            }
        } else {
            argError(std::string("unknown argument: ") + argv[i]);
        }
    }
    return args;
}

/**
 * A SpecRun plus the registry that owns its programs: run.jobs[].program
 * points into the registry's memo, so the two must travel together.
 */
struct BenchRun
{
    api::BenchmarkRegistry registry;
    api::SpecRun run;
};

/** Run @p spec through the paper registry, honouring BenchArgs. */
inline BenchRun
runSpec(const api::SweepSpec &spec, const BenchArgs &args)
{
    BenchRun bench_run{api::BenchmarkRegistry::paper(), {}};
    api::RunSpecOptions options;
    options.threads = args.threads;
    options.outDir = args.outDir;
    options.shard = args.shard;
    options.timeoutSeconds = args.timeoutSeconds;
    options.seedCheck = args.seedCheck;
    bench_run.run = api::runSpec(spec, bench_run.registry, options);
    return bench_run;
}

/**
 * Submission-order cursor for the benches' table phase: the table
 * loops re-walk the spec's axis structure consuming one result per
 * job, and the cursor asserts the two walks stay aligned.
 */
class ResultCursor
{
  public:
    explicit ResultCursor(const api::SpecRun &run) : run_(run) {}

    const SimResult &
    next()
    {
        LSQCA_REQUIRE(cursor_ < run_.report.results.size(),
                      "result cursor ran past the job list");
        return run_.report.results[cursor_++];
    }

  private:
    const api::SpecRun &run_;
    std::size_t cursor_ = 0;
};

/** Print a table and mirror it to <dir>/<stem>.csv when requested. */
inline void
emit(const TextTable &table, const std::string &title,
     const BenchArgs &args, const std::string &stem)
{
    std::cout << table.render(title) << "\n";
    if (args.csvDir)
        table.writeCsv(*args.csvDir + "/" + stem + ".csv");
}

} // namespace lsqca::bench

#endif // LSQCA_BENCH_BENCH_UTIL_H
