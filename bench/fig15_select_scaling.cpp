/**
 * @file
 * Fig. 15 reproduction: SELECT instance-size scaling. Lattice widths
 * 21/41/61/81/101 give 467/1,711/3,753/6,595/10,235 data qubits; each
 * runs on point/line SAMs and on the hybrid layouts that pin the
 * control+temporal registers into the conventional region, versus the
 * conventional baseline, for 1/2/4 factories.
 *
 * The large instances are evaluated on a steady-state unary-iteration
 * prefix (the loop is periodic); pass --full for complete circuits.
 * Each width's circuit is synthesized once, then all machine points fan
 * out over the sweep engine (`--threads N`); BENCH_fig15.json records
 * per-job metrics.
 */

#include "bench_util.h"

namespace lsqca {
namespace {

struct Config
{
    const char *label;
    SamKind sam;
    std::int32_t banks;
    bool hybrid;
};

constexpr Config kConfigs[] = {
    {"point#1", SamKind::Point, 1, false},
    {"point#2", SamKind::Point, 2, false},
    {"line#1", SamKind::Line, 1, false},
    {"line#4", SamKind::Line, 4, false},
    {"hybrid point#1", SamKind::Point, 1, true},
    {"hybrid point#2", SamKind::Point, 2, true},
    {"hybrid line#1", SamKind::Line, 1, true},
    {"hybrid line#4", SamKind::Line, 4, true},
};

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    const std::int32_t widths[] = {21, 41, 61, 81, 101};

    // Synthesize each SELECT instance once; every machine point reuses
    // the same translated program.
    std::vector<SelectLayout> layouts;
    std::vector<bench::Workload> instances;
    std::vector<double> hotFractions;
    for (std::int32_t width : widths) {
        const SelectLayout layout = selectLayout(width);
        // Steady-state prefix: enough unary-iteration periods for the
        // amortized walker cost to converge.
        SelectParams params;
        params.width = width;
        params.maxTerms =
            args.full ? 0
                      : std::min<std::int64_t>(layout.numTerms, 1200);
        layouts.push_back(layout);
        instances.push_back(
            {"SELECT" + std::to_string(width),
             translate(lowerToCliffordT(makeSelect(params))), 0});
        // Hybrid ratio: control+temporal registers conventional.
        hotFractions.push_back(
            static_cast<double>(layout.controlBits +
                                layout.temporalBits) /
            static_cast<double>(layout.totalQubits));
    }

    bench::Sweep sweep;
    for (std::int32_t factories : {1, 2, 4}) {
        for (std::size_t w = 0; w < instances.size(); ++w) {
            ArchConfig conv;
            conv.sam = SamKind::Conventional;
            conv.factories = factories;
            sweep.add(instances[w].name + "/conventional/f" +
                          std::to_string(factories),
                      instances[w].program, conv);
            for (const auto &config : kConfigs) {
                ArchConfig cfg;
                cfg.sam = config.sam;
                cfg.banks = config.banks;
                cfg.factories = factories;
                cfg.hybridFraction =
                    config.hybrid ? hotFractions[w] : 0.0;
                sweep.add(instances[w].name + "/" + config.label +
                              "/f" + std::to_string(factories),
                          instances[w].program, cfg);
            }
        }
    }
    sweep.run(args.threads);

    for (std::int32_t factories : {1, 2, 4}) {
        TextTable table({"width", "data qubits", "config", "density",
                         "exec overhead"});
        for (std::size_t w = 0; w < instances.size(); ++w) {
            const double conv_beats =
                static_cast<double>(sweep.next().execBeats);
            for (const auto &config : kConfigs) {
                const SimResult r = sweep.next();
                table.addRow(
                    {std::to_string(widths[w]),
                     std::to_string(layouts[w].totalQubits),
                     config.label, TextTable::num(r.density(), 3),
                     TextTable::num(static_cast<double>(r.execBeats) /
                                        conv_beats,
                                    3)});
            }
        }
        bench::emit(table,
                    "Fig. 15: SELECT scaling with " +
                        std::to_string(factories) + " factor" +
                        (factories == 1 ? "y" : "ies"),
                    args, "fig15_f" + std::to_string(factories));
    }
    sweep.writeJson("fig15", args);
    return 0;
}
