/**
 * @file
 * Fig. 15 reproduction: SELECT instance-size scaling. Lattice widths
 * 21/41/61/81/101 give 467/1,711/3,753/6,595/10,235 data qubits; each
 * runs on point/line SAMs and on the hybrid layouts that pin the
 * control+temporal registers into the conventional region, versus the
 * conventional baseline, for 1/2/4 factories.
 *
 * The large instances are evaluated on a steady-state unary-iteration
 * prefix (the loop is periodic); pass --full for complete circuits.
 * The declarative api::specs::fig15() sweep spec synthesizes each
 * width's circuit once (registry memoization) and fans every machine
 * point over the sweep engine (`--threads N`, `--shard i/N`); this
 * file only renders the tables. BENCH_fig15.json records per-job
 * metrics.
 */

#include "api/paper_specs.h"
#include "bench_util.h"
#include "synth/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);
    const api::SweepSpec spec = api::specs::fig15(args.full);
    const bench::BenchRun bench_run = bench::runSpec(spec, args);
    if (!args.shard.isWhole())
        return 0; // a slice can't render the cross-machine tables

    const std::int32_t widths[] = {21, 41, 61, 81, 101};
    // The machine axis: conventional first, then the eight configs.
    const auto &configs = spec.axes[2].values;

    bench::ResultCursor cursor(bench_run.run);
    for (std::int32_t factories : {1, 2, 4}) {
        TextTable table({"width", "data qubits", "config", "density",
                         "exec overhead"});
        for (std::int32_t width : widths) {
            const double conv_beats =
                static_cast<double>(cursor.next().execBeats);
            for (std::size_t c = 1; c < configs.size(); ++c) {
                const SimResult &r = cursor.next();
                table.addRow(
                    {std::to_string(width),
                     std::to_string(selectLayout(width).totalQubits),
                     configs[c].name, TextTable::num(r.density(), 3),
                     TextTable::num(static_cast<double>(r.execBeats) /
                                        conv_beats,
                                    3)});
            }
        }
        bench::emit(table,
                    "Fig. 15: SELECT scaling with " +
                        std::to_string(factories) + " factor" +
                        (factories == 1 ? "y" : "ies"),
                    args, "fig15_f" + std::to_string(factories));
    }
    return 0;
}
