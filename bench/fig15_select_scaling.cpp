/**
 * @file
 * Fig. 15 reproduction: SELECT instance-size scaling. Lattice widths
 * 21/41/61/81/101 give 467/1,711/3,753/6,595/10,235 data qubits; each
 * runs on point/line SAMs and on the hybrid layouts that pin the
 * control+temporal registers into the conventional region, versus the
 * conventional baseline, for 1/2/4 factories.
 *
 * The large instances are evaluated on a steady-state unary-iteration
 * prefix (the loop is periodic); pass --full for complete circuits.
 */

#include "bench_util.h"

namespace lsqca {
namespace {

struct Row
{
    std::string label;
    double density;
    double overhead;
};

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    const std::int32_t widths[] = {21, 41, 61, 81, 101};

    for (std::int32_t factories : {1, 2, 4}) {
        TextTable table({"width", "data qubits", "config", "density",
                         "exec overhead"});
        for (std::int32_t width : widths) {
            const SelectLayout layout = selectLayout(width);
            // Steady-state prefix: enough unary-iteration periods for
            // the amortized walker cost to converge.
            SelectParams params;
            params.width = width;
            params.maxTerms =
                args.full ? 0
                          : std::min<std::int64_t>(layout.numTerms, 1200);
            bench::Workload load{
                "SELECT" + std::to_string(width),
                translate(lowerToCliffordT(makeSelect(params))), 0};

            ArchConfig conv;
            conv.sam = SamKind::Conventional;
            conv.factories = factories;
            const double conv_beats =
                static_cast<double>(bench::run(load, conv).execBeats);

            // Hybrid ratio: control+temporal registers conventional.
            const double hot_fraction =
                static_cast<double>(layout.controlBits +
                                    layout.temporalBits) /
                static_cast<double>(layout.totalQubits);

            struct Config
            {
                const char *label;
                SamKind sam;
                std::int32_t banks;
                double f;
            };
            const Config configs[] = {
                {"point#1", SamKind::Point, 1, 0.0},
                {"point#2", SamKind::Point, 2, 0.0},
                {"line#1", SamKind::Line, 1, 0.0},
                {"line#4", SamKind::Line, 4, 0.0},
                {"hybrid point#1", SamKind::Point, 1, hot_fraction},
                {"hybrid point#2", SamKind::Point, 2, hot_fraction},
                {"hybrid line#1", SamKind::Line, 1, hot_fraction},
                {"hybrid line#4", SamKind::Line, 4, hot_fraction},
            };
            for (const auto &config : configs) {
                ArchConfig cfg;
                cfg.sam = config.sam;
                cfg.banks = config.banks;
                cfg.factories = factories;
                cfg.hybridFraction = config.f;
                const SimResult r = bench::run(load, cfg);
                table.addRow(
                    {std::to_string(width),
                     std::to_string(layout.totalQubits), config.label,
                     TextTable::num(r.density(), 3),
                     TextTable::num(static_cast<double>(r.execBeats) /
                                        conv_beats,
                                    3)});
            }
        }
        bench::emit(table,
                    "Fig. 15: SELECT scaling with " +
                        std::to_string(factories) + " factor" +
                        (factories == 1 ? "y" : "ies"),
                    args, "fig15_f" + std::to_string(factories));
    }
    return 0;
}
