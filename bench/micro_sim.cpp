/**
 * @file
 * google-benchmark microbenches for the simulator core: instruction
 * throughput per machine kind, bank cost-model queries, sliding-puzzle
 * insertion, and the MSF producer model.
 */

#include <benchmark/benchmark.h>

#include <numeric>

#include "arch/line_sam.h"
#include "arch/msf.h"
#include "arch/point_sam.h"
#include "circuit/lowering.h"
#include "geom/grid.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

const Program &
adderProgram()
{
    static const Program program =
        translate(lowerToCliffordT(makeAdder(64)));
    return program;
}

void
BM_SimulateConventional(benchmark::State &state)
{
    const Program &p = adderProgram();
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulateConventional(p));
    }
    state.SetItemsProcessed(state.iterations() * p.size());
}
BENCHMARK(BM_SimulateConventional);

void
BM_SimulatePointSam(benchmark::State &state)
{
    const Program &p = adderProgram();
    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulate(p, opts));
    }
    state.SetItemsProcessed(state.iterations() * p.size());
}
BENCHMARK(BM_SimulatePointSam);

void
BM_SimulateLineSam(benchmark::State &state)
{
    const Program &p = adderProgram();
    SimOptions opts;
    opts.arch.sam = SamKind::Line;
    opts.arch.banks = 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulate(p, opts));
    }
    state.SetItemsProcessed(state.iterations() * p.size());
}
BENCHMARK(BM_SimulateLineSam);

void
BM_PointSamLoadCost(benchmark::State &state)
{
    PointSamBank bank(static_cast<std::int32_t>(state.range(0)),
                      Latencies{});
    std::vector<QubitId> vars(static_cast<std::size_t>(state.range(0)));
    std::iota(vars.begin(), vars.end(), 0);
    bank.placeInitial(vars);
    QubitId q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bank.loadCost(q));
        q = (q + 17) % static_cast<QubitId>(state.range(0));
    }
}
BENCHMARK(BM_PointSamLoadCost)->Arg(99)->Arg(399)->Arg(1599);

void
BM_GridMakeRoom(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        OccupancyGrid grid(20, 20);
        for (std::int32_t i = 0; i < 399; ++i)
            grid.place(i, {i / 20, i % 20});
        state.ResumeTiming();
        benchmark::DoNotOptimize(grid.makeRoomAt({10, 0}));
    }
}
BENCHMARK(BM_GridMakeRoom);

void
BM_MagicSourceAcquire(benchmark::State &state)
{
    MagicSource msf(4, 8, 15, 1, true, false);
    std::int64_t t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(msf.acquire(t));
        t += 3;
    }
}
BENCHMARK(BM_MagicSourceAcquire);

void
BM_TranslateAdder(benchmark::State &state)
{
    const Circuit lowered = lowerToCliffordT(makeAdder(64));
    for (auto _ : state) {
        benchmark::DoNotOptimize(translate(lowered));
    }
}
BENCHMARK(BM_TranslateAdder);

void
BM_LowerSelect(benchmark::State &state)
{
    const Circuit select = makeSelect({5, 0});
    for (auto _ : state) {
        benchmark::DoNotOptimize(lowerToCliffordT(select));
    }
}
BENCHMARK(BM_LowerSelect);

} // namespace
} // namespace lsqca

BENCHMARK_MAIN();
