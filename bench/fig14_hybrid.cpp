/**
 * @file
 * Fig. 14 reproduction: the hybrid-floorplan trade-off between memory
 * density and execution-time overhead. For each benchmark, SAM design,
 * and factory count, the conventional-floorplan ratio f sweeps 0..1 in
 * steps of 0.05; f=0 is pure LSQCA, f=1 is the conventional baseline.
 * A GEOMEAN series across the seven benchmarks is emitted as in the
 * paper's bottom row.
 *
 * Default runs use steady-state prefixes for the long benchmarks; pass
 * --full for complete executions (slower). The ~1.8k simulation points
 * come from the declarative api::specs::fig14() sweep spec and fan out
 * over the sweep engine (`--threads N`, `--shard i/N`); this file only
 * renders the tables. BENCH_fig14.json records per-job metrics.
 */

#include <map>

#include "api/paper_specs.h"
#include "bench_util.h"
#include "common/stats.h"

namespace lsqca {
namespace {

constexpr const char *kChoices[] = {
    "point#1",
    "point#2",
    "line#1",
    "line#4",
};

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);
    const api::SweepSpec spec = api::specs::fig14(args.full);
    const bench::BenchRun bench_run = bench::runSpec(spec, args);
    if (!args.shard.isWhole())
        return 0; // a slice can't render the cross-machine tables

    const auto &loads = spec.axes[1].values;
    bench::ResultCursor cursor(bench_run.run);
    for (std::int32_t factories : {1, 2, 4}) {
        // overhead[label][f-step] accumulated for the GEOMEAN row.
        std::map<std::string, std::vector<std::vector<double>>> overs;
        std::map<std::string, std::vector<std::vector<double>>> dens;

        for (const auto &load : loads) {
            const double conv_beats =
                static_cast<double>(cursor.next().execBeats);

            TextTable table({"f", "point#1 dens", "point#1 ovh",
                             "point#2 dens", "point#2 ovh",
                             "line#1 dens", "line#1 ovh",
                             "line#4 dens", "line#4 ovh"});
            for (int step = 0; step <= 20; ++step) {
                const double f = 0.05 * step;
                std::vector<std::string> row{TextTable::num(f, 2)};
                for (const char *choice : kChoices) {
                    const SimResult &r = cursor.next();
                    const double overhead =
                        static_cast<double>(r.execBeats) / conv_beats;
                    row.push_back(TextTable::num(r.density(), 3));
                    row.push_back(TextTable::num(overhead, 3));
                    auto &o = overs[choice];
                    auto &d = dens[choice];
                    if (o.size() <= static_cast<std::size_t>(step)) {
                        o.resize(21);
                        d.resize(21);
                    }
                    o[static_cast<std::size_t>(step)].push_back(overhead);
                    d[static_cast<std::size_t>(step)].push_back(
                        r.density());
                }
                table.addRow(row);
            }
            bench::emit(table,
                        "Fig. 14 (" + load.name + ", " +
                            std::to_string(factories) +
                            " factories): density vs execution-time "
                            "overhead",
                        args,
                        "fig14_" + load.name + "_f" +
                            std::to_string(factories));
        }

        TextTable geo({"f", "point#1 dens", "point#1 ovh",
                       "point#2 dens", "point#2 ovh", "line#1 dens",
                       "line#1 ovh", "line#4 dens", "line#4 ovh"});
        for (int step = 0; step <= 20; ++step) {
            std::vector<std::string> row{TextTable::num(0.05 * step, 2)};
            for (const char *choice : kChoices) {
                row.push_back(TextTable::num(
                    geomean(dens[choice][static_cast<std::size_t>(step)]),
                    3));
                row.push_back(TextTable::num(
                    geomean(
                        overs[choice][static_cast<std::size_t>(step)]),
                    3));
            }
            geo.addRow(row);
        }
        bench::emit(geo,
                    "Fig. 14 (GEOMEAN over 7 benchmarks, " +
                        std::to_string(factories) + " factories)",
                    args, "fig14_geomean_f" + std::to_string(factories));
    }
    return 0;
}
