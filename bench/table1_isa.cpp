/**
 * @file
 * Table I reproduction: the LSQCA instruction set with its latency
 * classes, plus measured latencies from microprobes on a 100-qubit
 * point-SAM instance (variable-latency entries report min/mean/max over
 * a sweep of operand positions).
 */

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

namespace lsqca {
namespace {

/** Measure one opcode's latency distribution over operand positions. */
SummaryStats
probeOpcode(Opcode op)
{
    SummaryStats stats;
    for (std::int32_t target = 0; target < 99; target += 7) {
        Program p(100);
        std::int32_t v = -1;
        const OpcodeInfo &info = opcodeInfo(op);
        if (info.numVal > 0)
            v = p.newValue();
        // A PM seeds the slot for in-memory two-qubit measurements.
        if (op == Opcode::MZZ_M || op == Opcode::MXX_M ||
            op == Opcode::MZZ_C || op == Opcode::MXX_C ||
            op == Opcode::HD_C || op == Opcode::PH_C ||
            op == Opcode::MX_C || op == Opcode::MZ_C) {
            Instruction pm;
            pm.op = Opcode::PM;
            pm.c0 = 1;
            p.append(pm);
        }
        if (op == Opcode::ST || op == Opcode::HD_C || op == Opcode::PH_C) {
            Instruction ld;
            ld.op = Opcode::LD;
            ld.m0 = target;
            ld.c0 = 0;
            p.append(ld);
        }
        Instruction inst;
        inst.op = op;
        if (info.numMem >= 1)
            inst.m0 = target;
        if (info.numMem >= 2)
            inst.m1 = (target + 31) % 99;
        if (info.numReg >= 1)
            inst.c0 = op == Opcode::MZZ_M || op == Opcode::MXX_M ? 1 : 0;
        if (info.numReg >= 2)
            inst.c1 = 1;
        if (info.numVal >= 1)
            inst.v0 = v;
        const std::int64_t before = p.size();
        p.append(inst);

        SimOptions opts;
        opts.arch.sam = SamKind::Point;
        opts.arch.instantMagic = true; // isolate the op itself
        opts.recordTrace = false;
        const SimResult r = simulate(p, opts);
        // Duration of the probed instruction alone.
        const auto idx = static_cast<std::size_t>(inst.op);
        std::int64_t dur = r.opcodeBeats[idx];
        if (op == Opcode::LD)
            dur = r.opcodeBeats[static_cast<std::size_t>(Opcode::LD)];
        (void)before;
        stats.add(static_cast<double>(dur));
    }
    return stats;
}

const char *
describe(Opcode op)
{
    switch (op) {
      case Opcode::LD: return "Load logical qubit from SAM to CR";
      case Opcode::ST: return "Store logical qubit from CR to SAM";
      case Opcode::PZ_C: return "Initialize CR qubit to |0>";
      case Opcode::PP_C: return "Initialize CR qubit to |+>";
      case Opcode::PM: return "Move magic state from MSF to CR";
      case Opcode::HD_C: return "Hadamard on a CR qubit";
      case Opcode::PH_C: return "Phase gate on a CR qubit";
      case Opcode::MX_C: return "Pauli-X measurement in CR";
      case Opcode::MZ_C: return "Pauli-Z measurement in CR";
      case Opcode::MXX_C: return "Pauli-XX measurement in CR";
      case Opcode::MZZ_C: return "Pauli-ZZ measurement in CR";
      case Opcode::SK: return "Skip next instruction if value is zero";
      case Opcode::PZ_M: return "In-memory |0> initialization";
      case Opcode::PP_M: return "In-memory |+> initialization";
      case Opcode::HD_M: return "In-memory Hadamard";
      case Opcode::PH_M: return "In-memory phase gate";
      case Opcode::MX_M: return "In-memory Pauli-X measurement";
      case Opcode::MZ_M: return "In-memory Pauli-Z measurement";
      case Opcode::MXX_M: return "In-memory XX measurement vs CR";
      case Opcode::MZZ_M: return "In-memory ZZ measurement vs CR";
      case Opcode::CX: return "Optimized CNOT on memory qubits";
      case Opcode::CZ: return "Optimized CZ on memory qubits";
    }
    return "";
}

const char *
className(OpClass cls)
{
    switch (cls) {
      case OpClass::Memory: return "Memory";
      case OpClass::Preparation: return "Preparation";
      case OpClass::Unitary: return "Unitary";
      case OpClass::Measurement: return "Measurement";
      case OpClass::Control: return "Control";
      case OpClass::InMemoryPreparation: return "In-Memory Prep";
      case OpClass::InMemoryUnitary: return "In-Memory Unitary";
      case OpClass::InMemoryMeasurement: return "In-Memory Meas";
      case OpClass::OptimizedUnitary: return "Optimized Unitary";
    }
    return "";
}

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    TextTable table({"Type", "Syntax", "Table-I latency",
                     "Measured (min/mean/max beats)", "Description"});
    for (int i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        const OpcodeInfo &info = opcodeInfo(op);
        const SummaryStats stats = probeOpcode(op);
        const std::string fixed =
            info.latency == kVariableLatency
                ? "variable"
                : std::to_string(info.latency) + " beat";
        char measured[64];
        std::snprintf(measured, sizeof measured, "%.0f / %.1f / %.0f",
                      stats.min(), stats.mean(), stats.max());
        table.addRow({className(info.cls), info.mnemonic, fixed, measured,
                      describe(op)});
    }
    bench::emit(table,
                "Table I: LSQCA instruction set "
                "(measured on a 100-qubit point-SAM, instant magic)",
                args, "table1_isa");
    return 0;
}
