/**
 * @file
 * Chrono-based microbenchmarks for the two hot paths this repo's perf
 * work tracks: whole simulate() calls per machine kind, and the
 * statevector amplitude kernels. Emits BENCH_micro.json so successive
 * runs are machine-comparable (tools/bench_diff.py fails CI on >10%
 * regressions).
 *
 * Usage:
 *   micro_kernels [--smoke] [--out <dir>] [--csv <dir>]
 *
 * --smoke shrinks sizes/reps for CI; timings stay comparable between
 * two smoke runs (or two full runs), not across modes.
 */

#include <chrono>
#include <cstdint>

#include "bench_util.h"
#include "circuit/lowering.h"
#include "circuit/statevector.h"
#include "common/json.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-@p reps wall time of one call to @p fn. */
template <typename F>
double
bestOf(int reps, F &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const double t0 = now();
        fn();
        best = std::min(best, now() - t0);
    }
    return best;
}

struct Entry
{
    std::string name;
    double seconds;      ///< best-of wall time per call
    double perUnitNs;    ///< ns per instruction / amplitude
    const char *unit;
    std::int64_t units;  ///< instructions or amplitudes per call
};

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    const int simReps = args.smoke ? 2 : 5;
    const int svReps = args.smoke ? 3 : 7;
    const std::int32_t adderBits = args.smoke ? 16 : 64;
    const std::int32_t svQubits = args.smoke ? 14 : 20;

    std::vector<Entry> entries;
    auto record = [&](std::string name, double seconds, const char *unit,
                      std::int64_t units) {
        entries.push_back({std::move(name), seconds,
                           units > 0 ? seconds * 1e9 /
                                           static_cast<double>(units)
                                     : 0.0,
                           unit, units});
    };

    // ---- simulate() per machine kind -----------------------------------
    const Program adder =
        translate(lowerToCliffordT(makeAdder(adderBits)));
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Conventional;
        record("simulate/conventional/adder",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size());
    }
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Point;
        record("simulate/point#1/adder",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size());
    }
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Line;
        opts.arch.banks = 4;
        record("simulate/line#4/adder",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size());
    }
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Line;
        opts.arch.hybridFraction = 0.25;
        record("simulate/hybrid-line#1/adder",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size());
    }

    // ---- statevector kernels -------------------------------------------
    const auto amps = std::int64_t{1} << svQubits;
    {
        StateVector sv(svQubits);
        for (std::int32_t q = 0; q < svQubits; ++q)
            sv.applyH(q); // dense superposition
        record("statevector/apply1-H",
               bestOf(svReps, [&] { sv.applyH(svQubits / 2); }),
               "amplitude", amps);
        record("statevector/probabilityOne",
               bestOf(svReps,
                      [&] { (void)sv.probabilityOne(svQubits / 2); }),
               "amplitude", amps / 2);
        record("statevector/applyCX",
               bestOf(svReps, [&] { sv.applyCX(0, svQubits - 1); }),
               "amplitude", amps / 4);
        record("statevector/applyCCX",
               bestOf(svReps,
                      [&] { sv.applyCCX(0, 1, svQubits - 1); }),
               "amplitude", amps / 8);
        record("statevector/norm",
               bestOf(svReps, [&] { (void)sv.norm(); }), "amplitude",
               amps);
    }
    {
        record("statevector/measureZ+collapse",
               bestOf(svReps,
                      [&] {
                          StateVector sv(svQubits);
                          for (std::int32_t q = 0; q < svQubits; ++q)
                              sv.applyH(q);
                          (void)sv.measureZ(0);
                      }),
               "amplitude", amps);
    }

    // ---- report ---------------------------------------------------------
    TextTable table({"kernel", "best wall (s)", "ns/unit", "unit"});
    Json jentries = Json::array();
    for (const auto &entry : entries) {
        table.addRow({entry.name, TextTable::num(entry.seconds, 6),
                      TextTable::num(entry.perUnitNs, 2), entry.unit});
        Json metrics = Json::object();
        metrics.set("wall_seconds", entry.seconds);
        metrics.set("ns_per_unit", entry.perUnitNs);
        metrics.set("units", entry.units);
        Json jentry = Json::object();
        jentry.set("name", entry.name);
        jentry.set("metrics", std::move(metrics));
        jentries.push(std::move(jentry));
    }
    bench::emit(table,
                std::string("Micro kernels (") +
                    (args.smoke ? "smoke" : "full") + " mode)",
                args, "micro_kernels");

    Json doc = Json::object();
    doc.set("bench", "micro");
    doc.set("schema", "lsqca-bench-v1");
    doc.set("mode", args.smoke ? "smoke" : "full");
    doc.set("entries", std::move(jentries));
    const std::string path = writeBenchJson("micro", doc, args.outDir);
    std::cerr << "micro: " << entries.size() << " kernels -> " << path
              << "\n";
    return 0;
}
