/**
 * @file
 * Chrono-based microbenchmarks for the two hot paths this repo's perf
 * work tracks: whole simulate() calls per machine kind, and the
 * statevector amplitude kernels. Emits BENCH_micro.json so successive
 * runs are machine-comparable (tools/bench_diff.py fails CI on >10%
 * regressions).
 *
 * Usage:
 *   micro_kernels [--smoke] [--out <dir>] [--csv <dir>]
 *
 * --smoke shrinks sizes/reps for CI; timings stay comparable between
 * two smoke runs (or two full runs), not across modes.
 */

#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>

#include "arch/line_sam.h"
#include "arch/point_sam.h"
#include "bench_util.h"
#include "circuit/lowering.h"
#include "circuit/statevector.h"
#include "common/fs.h"
#include "common/json.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "geom/grid.h"
#include "service/journal.h"
#include "sim/machine.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

/** Keep @p value live without emitting it (loop bodies under test). */
inline void
doNotOptimize(std::int64_t value)
{
    asm volatile("" : : "g"(value) : "memory");
}

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-@p reps wall time of one call to @p fn. */
template <typename F>
double
bestOf(int reps, F &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const double t0 = now();
        fn();
        best = std::min(best, now() - t0);
    }
    return best;
}

struct Entry
{
    std::string name;
    double seconds;      ///< best-of wall time per call
    double perUnitNs;    ///< ns per instruction / amplitude / query
    const char *unit;
    std::int64_t units;  ///< instructions/amplitudes/queries per call
    /** JSON metric key; bank kernels use ns_per_loadCost etc. so
     *  tools/bench_diff.py gates each query kind by name. */
    const char *metricKey = "ns_per_unit";
};

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    const int simReps = args.smoke ? 2 : 5;
    const int svReps = args.smoke ? 3 : 7;
    const std::int32_t adderBits = args.smoke ? 16 : 64;
    const std::int32_t svQubits = args.smoke ? 14 : 20;

    std::vector<Entry> entries;
    auto record = [&](std::string name, double seconds, const char *unit,
                      std::int64_t units,
                      const char *metric_key = "ns_per_unit") {
        entries.push_back({std::move(name), seconds,
                           units > 0 ? seconds * 1e9 /
                                           static_cast<double>(units)
                                     : 0.0,
                           unit, units, metric_key});
    };

    // ---- simulate() per machine kind -----------------------------------
    const Program adder =
        translate(lowerToCliffordT(makeAdder(adderBits)));
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Conventional;
        record("simulate/conventional/adder",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size());
    }
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Point;
        record("simulate/point#1/adder",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size());
    }
    {
        // Observer-path overhead probe: same sweep point with one no-op
        // observer attached, so the event-construction + bank-hook cost
        // of the OBSERVE instantiation is tracked next to the plain
        // kernel above (the no-observer path compiles event-free; this
        // pins what turning telemetry ON costs).
        SimOptions opts;
        opts.arch.sam = SamKind::Point;
        SimObserver null_observer;
        opts.observers.push_back(&null_observer);
        record("simulate/point#1/adder/null-observer",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size(),
               "ns_per_instr_null_observer");
    }
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Line;
        opts.arch.banks = 4;
        record("simulate/line#4/adder",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size());
    }
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Line;
        opts.arch.hybridFraction = 0.25;
        record("simulate/hybrid-line#1/adder",
               bestOf(simReps, [&] { simulate(adder, opts); }),
               "instruction", adder.size());
    }

    // ---- sampled-estimator fast-forward kernel -------------------------
    // Functional warming throughput: replay the adder stream through
    // fastForwardOne() the way the sampled estimator walks skipped
    // spans (memory-op skip-list, no timing). Normalized per *program*
    // instruction so it reads directly against simulate/point#1/adder
    // — the gap between the two is the most sampling can save per
    // skipped instruction (docs/SAMPLING.md).
    {
        SimOptions opts;
        opts.arch.sam = SamKind::Point;
        record("estimate/ff/point#1/adder",
               bestOf(simReps,
                      [&] {
                          detail::Machine<SamKind::Point, false>
                              machine(adder, opts);
                          const Instruction *code =
                              adder.instructions().data();
                          const auto index = adder.streamIndex();
                          for (const std::int64_t i : index->memOps)
                              machine.fastForwardOne(code[i]);
                          doNotOptimize(machine.pmExecuted());
                      }),
               "instruction", adder.size(), "ns_per_ff_instr");
    }

    // ---- bank cost-model kernels ---------------------------------------
    // The point/line simulate() hot path is bound by these queries
    // (ROADMAP "Performance & benchmarking"); tracking them per query
    // kind pins the occupancy-index win and gates future regressions.
    const std::int32_t bankCap = args.smoke ? 99 : 399;
    const int bankReps = args.smoke ? 3 : 7;
    std::vector<QubitId> bankVars(static_cast<std::size_t>(bankCap));
    std::iota(bankVars.begin(), bankVars.end(), 0);
    {
        PointSamBank bank(bankCap, Latencies{});
        bank.placeInitial(bankVars);
        record("bank/point/loadCost",
               bestOf(bankReps,
                      [&] {
                          std::int64_t sink = 0;
                          for (QubitId q = 0; q < bankCap; ++q)
                              sink += bank.loadCost(q);
                          doNotOptimize(sink);
                      }),
               "query", bankCap, "ns_per_loadCost");
        // Load/locality-store churn: storeCost + commitStore exercise
        // the nearest-empty index and the makeRoomAt hole walk.
        record("bank/point/storeCost",
               bestOf(bankReps,
                      [&] {
                          std::int64_t sink = 0;
                          for (QubitId q = 0; q < bankCap; ++q) {
                              bank.commitLoad(q);
                              const bool locality = (q & 1) == 0;
                              sink += bank.storeCost(q, locality);
                              bank.commitStore(q, locality);
                          }
                          doNotOptimize(sink);
                      }),
               "query", bankCap, "ns_per_storeCost");
    }
    {
        LineSamBank bank(bankCap, Latencies{});
        bank.placeInitial(bankVars);
        record("bank/line/loadCost",
               bestOf(bankReps,
                      [&] {
                          std::int64_t sink = 0;
                          for (QubitId q = 0; q < bankCap; ++q)
                              sink += bank.loadCost(q);
                          doNotOptimize(sink);
                      }),
               "query", bankCap, "ns_per_loadCost");
        record("bank/line/storeCost",
               bestOf(bankReps,
                      [&] {
                          std::int64_t sink = 0;
                          for (QubitId q = 0; q < bankCap; ++q) {
                              bank.commitLoad(q);
                              const bool locality = (q & 1) == 0;
                              sink += bank.storeCost(q, locality);
                              bank.commitStore(q, locality);
                          }
                          doNotOptimize(sink);
                      }),
               "query", bankCap, "ns_per_storeCost");
    }
    {
        // Near-full grid (the SAM operating point): every cell queried
        // as a target against a handful of holes.
        const std::int32_t side = args.smoke ? 16 : 30;
        OccupancyGrid grid(side, side);
        QubitId next = 0;
        for (std::int32_t r = 0; r < side; ++r)
            for (std::int32_t c = 0; c < side; ++c)
                if ((r * side + c) % (side * side / 4) != 1)
                    grid.place(next++, {r, c});
        record("bank/grid/nearestEmpty",
               bestOf(bankReps,
                      [&] {
                          std::int64_t sink = 0;
                          for (std::int32_t r = 0; r < side; ++r)
                              for (std::int32_t c = 0; c < side; ++c)
                                  sink +=
                                      grid.nearestEmpty({r, c})->row;
                          doNotOptimize(sink);
                      }),
               "query", static_cast<std::int64_t>(side) * side,
               "ns_per_nearestEmpty");
    }

    {
        // Journal append cost (docs/METRICS.md): one campaign event
        // through Journal::record — Json build, compact dump, one
        // write(2) on an O_APPEND fd. The orchestrator pays this a
        // handful of times per process spawn; the number here pins
        // that it stays noise next to fork+exec.
        const std::int64_t appendsPerRep = args.smoke ? 2000 : 20000;
        const std::string dir = args.outDir + "/journal_bench";
        fsutil::makeDirs(dir);
        const std::string path = dir + "/events.jsonl";
        record("service/journal/append",
               bestOf(bankReps,
                      [&] {
                          fsutil::removeFile(path);
                          auto journal = service::Journal::open(
                              path, service::JournalClock::Logical);
                          Json fields = Json::object();
                          fields.set("shard", std::int64_t{3});
                          fields.set("attempt", std::int64_t{1});
                          fields.set("worker", std::int64_t{2});
                          for (std::int64_t i = 0; i < appendsPerRep;
                               ++i)
                              journal.record("spawn", fields);
                          doNotOptimize(journal.seq());
                      }),
               "append", appendsPerRep, "ns_per_journal_append");
        fsutil::removeFile(path);
    }

    {
        // Daemon control-plane latency (docs/DAEMON.md): one ping
        // frame over the Unix socket — client write, poll-loop
        // wakeup, parse, dispatch, response write, client read.
        // Bounds how much chatty clients (status pollers, watch
        // streams) can perturb the serve loop's scheduling.
        const std::int64_t pingsPerRep = args.smoke ? 200 : 2000;
        daemon::DaemonOptions options;
        options.root = args.outDir + "/daemon_bench";
        options.workers = 1;
        // No campaigns are submitted; the worker binary is never run.
        options.workerExe = "unused";
        options.handleSignals = false;
        options.pollSeconds = 0.001;
        daemon::Daemon server(std::move(options));
        std::thread serveThread([&] { server.run(); });
        while (!fsutil::exists(server.socketPath()))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        {
            daemon::Client client(server.socketPath());
            Json ping = Json::object();
            ping.set("op", "ping");
            record("daemon/ping-roundtrip",
                   bestOf(bankReps,
                          [&] {
                              for (std::int64_t i = 0;
                                   i < pingsPerRep; ++i)
                                  client.call(ping);
                          }),
                   "roundtrip", pingsPerRep,
                   "ns_per_daemon_roundtrip");
        }
        server.requestStop();
        serveThread.join();
    }

    // ---- statevector kernels -------------------------------------------
    const auto amps = std::int64_t{1} << svQubits;
    {
        StateVector sv(svQubits);
        for (std::int32_t q = 0; q < svQubits; ++q)
            sv.applyH(q); // dense superposition
        record("statevector/apply1-H",
               bestOf(svReps, [&] { sv.applyH(svQubits / 2); }),
               "amplitude", amps);
        record("statevector/probabilityOne",
               bestOf(svReps,
                      [&] { (void)sv.probabilityOne(svQubits / 2); }),
               "amplitude", amps / 2);
        record("statevector/applyCX",
               bestOf(svReps, [&] { sv.applyCX(0, svQubits - 1); }),
               "amplitude", amps / 4);
        record("statevector/applyCCX",
               bestOf(svReps,
                      [&] { sv.applyCCX(0, 1, svQubits - 1); }),
               "amplitude", amps / 8);
        record("statevector/norm",
               bestOf(svReps, [&] { (void)sv.norm(); }), "amplitude",
               amps);
    }
    {
        record("statevector/measureZ+collapse",
               bestOf(svReps,
                      [&] {
                          StateVector sv(svQubits);
                          for (std::int32_t q = 0; q < svQubits; ++q)
                              sv.applyH(q);
                          (void)sv.measureZ(0);
                      }),
               "amplitude", amps);
    }

    // ---- report ---------------------------------------------------------
    TextTable table({"kernel", "best wall (s)", "ns/unit", "unit"});
    Json jentries = Json::array();
    for (const auto &entry : entries) {
        table.addRow({entry.name, TextTable::num(entry.seconds, 6),
                      TextTable::num(entry.perUnitNs, 2), entry.unit});
        Json metrics = Json::object();
        metrics.set("wall_seconds", entry.seconds);
        metrics.set(entry.metricKey, entry.perUnitNs);
        metrics.set("units", entry.units);
        Json jentry = Json::object();
        jentry.set("name", entry.name);
        jentry.set("metrics", std::move(metrics));
        jentries.push(std::move(jentry));
    }
    bench::emit(table,
                std::string("Micro kernels (") +
                    (args.smoke ? "smoke" : "full") + " mode)",
                args, "micro_kernels");

    Json doc = Json::object();
    doc.set("bench", "micro");
    doc.set("schema", "lsqca-bench-v1");
    doc.set("mode", args.smoke ? "smoke" : "full");
    doc.set("entries", std::move(jentries));
    const std::string path = writeBenchJson("micro", doc, args.outDir);
    std::cerr << "micro: " << entries.size() << " kernels -> " << path
              << "\n";
    return 0;
}
