/**
 * @file
 * Fig. 8 reproduction: memory-reference pattern analysis for the SELECT
 * (10x10 Heisenberg) and multiplier benchmarks under the Sec. III-B
 * assumptions (instant magic states, unlimited ILP).
 *
 * Emits, per benchmark:
 *   - the reference-period CDF sampled at log-spaced periods (8b/8d),
 *   - per-register reference statistics (the 8a/8c register skew),
 *   - the magic-state demand interval (paper: 11.6 and 2.14 beats),
 *   - a reference-timestamp sample series for plotting (CSV mode).
 */

#include "analysis/trace_analysis.h"
#include "bench_util.h"
#include "circuit/lowering.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace lsqca {
namespace {

struct TraceRun
{
    std::string name;
    Program program;
    SimResult result;
};

TraceRun
runTrace(const std::string &name, const Circuit &circ,
         std::int64_t max_instructions)
{
    Program program = translate(lowerToCliffordT(circ));
    SimOptions opts;
    opts.arch.sam = SamKind::Conventional;
    opts.arch.instantMagic = true;
    opts.recordTrace = true;
    opts.maxInstructions = max_instructions;
    SimResult result = simulate(program, opts);
    return {name, std::move(program), std::move(result)};
}

void
report(const TraceRun &run, const bench::BenchArgs &args)
{
    const TraceAnalysis analysis(run.program, run.result);

    TextTable summary({"register", "qubits", "references",
                       "refs/qubit", "median period", "p90 period",
                       "p99 period"});
    for (const auto &group : analysis.groups()) {
        std::int64_t qubits = run.program.numVariables();
        for (const auto &reg : run.program.registers())
            if (reg.name == group.name)
                qubits = reg.size;
        const bool has_periods = group.periods.count() > 0;
        summary.addRow(
            {group.name, std::to_string(qubits),
             std::to_string(group.references),
             TextTable::num(static_cast<double>(group.references) /
                                static_cast<double>(qubits),
                            1),
             has_periods ? TextTable::num(group.periods.quantile(0.5), 1)
                         : "-",
             has_periods ? TextTable::num(group.periods.quantile(0.9), 1)
                         : "-",
             has_periods ? TextTable::num(group.periods.quantile(0.99), 1)
                         : "-"});
    }
    bench::emit(summary,
                "Fig. 8 (" + run.name + "): register reference summary, "
                "exec " + std::to_string(run.result.execBeats) +
                " beats",
                args, "fig08_" + run.name + "_registers");

    TextTable cdf2([&] {
        std::vector<std::string> cols{"period [beats]"};
        for (const auto &group : analysis.groups())
            cols.push_back(group.name);
        return cols;
    }());
    for (double period : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                          500.0, 1000.0, 5000.0, 20000.0}) {
        std::vector<std::string> row{TextTable::num(period, 0)};
        for (const auto &group : analysis.groups())
            row.push_back(group.periods.count() > 0
                              ? TextTable::num(group.periods.at(period),
                                               3)
                              : "-");
        cdf2.addRow(row);
    }
    bench::emit(cdf2,
                "Fig. 8b/8d (" + run.name +
                    "): cumulative reference-period distribution",
                args, "fig08_" + run.name + "_cdf");

    TextTable scalars({"metric", "value"});
    scalars.addRow({"magic demand interval [beats]",
                    TextTable::num(analysis.magicDemandInterval(), 2)});
    scalars.addRow({"mean reference period [beats]",
                    TextTable::num(analysis.meanPeriod(), 2)});
    scalars.addRow({"sequential-access fraction (radius 2)",
                    TextTable::num(analysis.sequentialFraction(2), 3)});
    scalars.addRow(
        {"total references", std::to_string(analysis.totalReferences())});
    bench::emit(scalars,
                "Sec. III-B scalars (" + run.name +
                    ") [paper: SELECT 11.6, multiplier 2.14 "
                    "beats/magic]",
                args, "fig08_" + run.name + "_scalars");

    if (args.csvDir) {
        // Timestamp scatter (Fig. 8a/8c raw series) for plotting.
        TextTable scatter({"time", "qubit"});
        for (const auto &sample : run.result.trace)
            scatter.addRow({std::to_string(sample.time),
                            std::to_string(sample.variable)});
        scatter.writeCsv(*args.csvDir + "/fig08_" + run.name +
                         "_timestamps.csv");
    }
}

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    // Sec. III-B uses the 10x10 Heisenberg SELECT and the multiplier
    // (first 20,000 beats of the multiplier trace are plotted).
    report(runTrace("SELECT", makeSelect({10, 0}), 0), args);
    report(runTrace("multiplier", makeMultiplier(),
                    args.full ? 0 : 150'000),
           args);
    return 0;
}
