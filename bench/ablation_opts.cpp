/**
 * @file
 * Ablations of the Sec. V optimizations, as called out in DESIGN.md:
 *   - locality-aware store on/off,
 *   - in-memory operations on/off (with matching LD/ST translation),
 *   - the direct-surgery extension (beyond-paper),
 *   - magic-buffer depth sweep,
 *   - bank-count sweep.
 * Reported on the two headline workloads (multiplier, SELECT) plus the
 * worst-case Clifford chain (cat).
 *
 * All variant points come from the declarative api::specs::ablation()
 * sweep spec — including the LD/ST translation swap, expressed as a
 * translate patch on the variant axis — and fan out over the sweep
 * engine (`--threads N`, `--shard i/N`); this file only renders the
 * tables. BENCH_ablation.json records per-job metrics.
 */

#include "api/paper_specs.h"
#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);
    const api::SweepSpec spec = api::specs::ablation(args.full);
    const bench::BenchRun bench_run = bench::runSpec(spec, args);
    if (!args.shard.isWhole())
        return 0; // a slice can't render the cross-variant tables

    const auto &works = spec.axes[0].values;
    // Variant axis: "conventional", then (variant x point/line) pairs
    // named "<variant label>/<machine label>".
    const auto &variants = spec.axes[1].values;
    const std::size_t num_variants = (variants.size() - 1) / 2;

    bench::ResultCursor cursor(bench_run.run);
    for (const auto &work : works) {
        const double conv =
            static_cast<double>(cursor.next().execBeats);
        TextTable table({"variant", "point#1 overhead",
                         "line#1 overhead"});
        for (std::size_t v = 0; v < num_variants; ++v) {
            // Machine labels contain no '/', so the variant label is
            // everything before the last separator.
            const std::string &name = variants[1 + 2 * v].name;
            std::vector<std::string> row{
                name.substr(0, name.rfind('/'))};
            for (int s = 0; s < 2; ++s)
                row.push_back(TextTable::num(
                    static_cast<double>(cursor.next().execBeats) / conv,
                    3));
            table.addRow(row);
        }
        bench::emit(table,
                    "Ablation (" + work.name +
                        ", factory 1, overhead vs conventional)",
                    args, "ablation_" + work.name);
    }
    return 0;
}
