/**
 * @file
 * Ablations of the Sec. V optimizations, as called out in DESIGN.md:
 *   - locality-aware store on/off,
 *   - in-memory operations on/off (with matching LD/ST translation),
 *   - the direct-surgery extension (beyond-paper),
 *   - magic-buffer depth sweep,
 *   - bank-count sweep.
 * Reported on the two headline workloads (multiplier, SELECT) plus the
 * worst-case Clifford chain (cat).
 *
 * All variant points fan out over the sweep engine (`--threads N`);
 * BENCH_ablation.json records per-job metrics.
 */

#include <functional>

#include "bench_util.h"

namespace lsqca {
namespace {

struct Work
{
    std::string name;
    Program inMem;
    Program ldSt;
    std::int64_t prefix;
};

struct Variant
{
    const char *label;
    bool useLdSt; ///< run the explicit-LD/ST translation
    std::function<void(ArchConfig &)> mutate;
};

const std::vector<Variant> &
variants()
{
    static const std::vector<Variant> kVariants = {
        {"baseline (all paper opts)", false, [](ArchConfig &) {}},
        {"no locality-aware store", false,
         [](ArchConfig &cfg) { cfg.localityStore = false; }},
        {"no in-memory ops (LD/ST everywhere)", true,
         [](ArchConfig &cfg) { cfg.inMemoryOps = false; }},
        {"+ direct-surgery extension", false,
         [](ArchConfig &cfg) { cfg.directSurgery = true; }},
        {"buffer cap 1", false,
         [](ArchConfig &cfg) { cfg.bufferCap = 1; }},
        {"buffer cap 8", false,
         [](ArchConfig &cfg) { cfg.bufferCap = 8; }},
        {"cold magic buffer", false,
         [](ArchConfig &cfg) { cfg.warmBuffer = false; }},
        {"2 banks", false, [](ArchConfig &cfg) { cfg.banks = 2; }},
        {"no row-parallel unitaries", false,
         [](ArchConfig &cfg) { cfg.rowParallelOps = false; }},
        {"interleaved placement", false,
         [](ArchConfig &cfg) {
             cfg.placement = PlacementPolicy::Interleaved;
         }},
        {"interleaved + direct surgery", false,
         [](ArchConfig &cfg) {
             cfg.placement = PlacementPolicy::Interleaved;
             cfg.directSurgery = true;
         }},
    };
    return kVariants;
}

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    std::vector<Work> works;
    auto addWork = [&](const char *name, const Circuit &lowered,
                       std::int64_t prefix) {
        TranslateOptions explicit_ldst;
        explicit_ldst.inMemoryOps = false;
        works.push_back({name, translate(lowered),
                         translate(lowered, explicit_ldst), prefix});
    };
    addWork("multiplier", lowerToCliffordT(makeMultiplier()),
            args.full ? 0 : 60'000);
    addWork("SELECT", lowerToCliffordT(makeSelect({11, 0})),
            args.full ? 0 : 60'000);
    addWork("cat", lowerToCliffordT(makeCat()), 0);

    bench::Sweep sweep;
    for (const auto &work : works) {
        ArchConfig conv;
        conv.sam = SamKind::Conventional;
        sweep.add(work.name + "/conventional", work.inMem, conv,
                  work.prefix);
        for (const auto &variant : variants()) {
            for (SamKind sam : {SamKind::Point, SamKind::Line}) {
                ArchConfig cfg;
                cfg.sam = sam;
                variant.mutate(cfg);
                sweep.add(work.name + "/" + variant.label + "/" +
                              cfg.label(),
                          variant.useLdSt ? work.ldSt : work.inMem, cfg,
                          work.prefix);
            }
        }
    }
    sweep.run(args.threads);

    for (const auto &work : works) {
        const double conv =
            static_cast<double>(sweep.next().execBeats);
        TextTable table({"variant", "point#1 overhead",
                         "line#1 overhead"});
        for (const auto &variant : variants()) {
            std::vector<std::string> row{variant.label};
            for (int s = 0; s < 2; ++s)
                row.push_back(TextTable::num(
                    static_cast<double>(sweep.next().execBeats) / conv,
                    3));
            table.addRow(row);
        }
        bench::emit(table,
                    "Ablation (" + work.name +
                        ", factory 1, overhead vs conventional)",
                    args, "ablation_" + work.name);
    }
    sweep.writeJson("ablation", args);
    return 0;
}
