/**
 * @file
 * Ablations of the Sec. V optimizations, as called out in DESIGN.md:
 *   - locality-aware store on/off,
 *   - in-memory operations on/off (with matching LD/ST translation),
 *   - the direct-surgery extension (beyond-paper),
 *   - magic-buffer depth sweep,
 *   - bank-count sweep.
 * Reported on the two headline workloads (multiplier, SELECT) plus the
 * worst-case Clifford chain (cat).
 */

#include "bench_util.h"

namespace lsqca {
namespace {

struct Work
{
    std::string name;
    Circuit lowered;
    std::int64_t prefix;
};

double
overheadOf(const Program &program, const ArchConfig &cfg,
           std::int64_t prefix, double conv_beats)
{
    SimOptions opts;
    opts.arch = cfg;
    opts.maxInstructions = prefix;
    return static_cast<double>(simulate(program, opts).execBeats) /
           conv_beats;
}

} // namespace
} // namespace lsqca

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    std::vector<Work> works;
    works.push_back(
        {"multiplier", lowerToCliffordT(makeMultiplier()),
         args.full ? 0 : 60'000});
    works.push_back({"SELECT", lowerToCliffordT(makeSelect({11, 0})),
                     args.full ? 0 : 60'000});
    works.push_back({"cat", lowerToCliffordT(makeCat()), 0});

    for (const auto &work : works) {
        const Program in_mem = translate(work.lowered);
        TranslateOptions explicit_ldst;
        explicit_ldst.inMemoryOps = false;
        const Program ld_st = translate(work.lowered, explicit_ldst);

        const double conv = static_cast<double>(
            simulateConventional(in_mem, 1, work.prefix).execBeats);

        TextTable table({"variant", "point#1 overhead",
                         "line#1 overhead"});
        auto addRow = [&](const std::string &label, const Program &prog,
                          auto mutate) {
            std::vector<std::string> row{label};
            for (SamKind sam : {SamKind::Point, SamKind::Line}) {
                ArchConfig cfg;
                cfg.sam = sam;
                mutate(cfg);
                row.push_back(TextTable::num(
                    overheadOf(prog, cfg, work.prefix, conv), 3));
            }
            table.addRow(row);
        };

        addRow("baseline (all paper opts)", in_mem,
               [](ArchConfig &) {});
        addRow("no locality-aware store", in_mem, [](ArchConfig &cfg) {
            cfg.localityStore = false;
        });
        addRow("no in-memory ops (LD/ST everywhere)", ld_st,
               [](ArchConfig &cfg) { cfg.inMemoryOps = false; });
        addRow("+ direct-surgery extension", in_mem,
               [](ArchConfig &cfg) { cfg.directSurgery = true; });
        addRow("buffer cap 1", in_mem,
               [](ArchConfig &cfg) { cfg.bufferCap = 1; });
        addRow("buffer cap 8", in_mem,
               [](ArchConfig &cfg) { cfg.bufferCap = 8; });
        addRow("cold magic buffer", in_mem,
               [](ArchConfig &cfg) { cfg.warmBuffer = false; });
        addRow("2 banks", in_mem,
               [](ArchConfig &cfg) { cfg.banks = 2; });
        addRow("no row-parallel unitaries", in_mem,
               [](ArchConfig &cfg) { cfg.rowParallelOps = false; });
        addRow("interleaved placement", in_mem, [](ArchConfig &cfg) {
            cfg.placement = PlacementPolicy::Interleaved;
        });
        addRow("interleaved + direct surgery", in_mem,
               [](ArchConfig &cfg) {
                   cfg.placement = PlacementPolicy::Interleaved;
                   cfg.directSurgery = true;
               });

        bench::emit(table,
                    "Ablation (" + work.name +
                        ", factory 1, overhead vs conventional)",
                    args, "ablation_" + work.name);
    }
    return 0;
}
