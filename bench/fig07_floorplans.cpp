/**
 * @file
 * Fig. 7 reproduction: the densities of the existing floorplan
 * strategies versus the LSQCA designs, both as closed-form catalogue
 * entries and as measured machine instances at the paper's benchmark
 * sizes.
 */

#include "bench_util.h"
#include "arch/floorplan.h"

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);

    TextTable catalogue({"Floorplan", "Memory density",
                         "Worst-case access (beats)"});
    for (const auto &entry : floorplanCatalogue()) {
        catalogue.addRow(
            {entry.name, TextTable::num(entry.density, 3),
             entry.accessBeats < 0 ? "variable"
                                   : std::to_string(entry.accessBeats)});
    }
    bench::emit(catalogue, "Fig. 7: floorplan catalogue", args,
                "fig07_catalogue");

    TextTable measured({"Benchmark", "Qubits", "point#1", "point#2",
                        "line#1", "line#2", "line#4", "conventional"});
    const std::int64_t sizes[][2] = {
        {433, 0}, {280, 0}, {260, 0}, {127, 0},
        {400, 0}, {60, 0},  {143, 0},
    };
    const char *names[] = {"adder", "bv", "cat", "ghz",
                           "multiplier", "square_root", "SELECT"};
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        std::vector<std::string> row{names[i],
                                     std::to_string(sizes[i][0])};
        for (const auto &[sam, banks] :
             std::vector<std::pair<SamKind, std::int32_t>>{
                 {SamKind::Point, 1},
                 {SamKind::Point, 2},
                 {SamKind::Line, 1},
                 {SamKind::Line, 2},
                 {SamKind::Line, 4},
                 {SamKind::Conventional, 1}}) {
            ArchConfig cfg;
            cfg.sam = sam;
            cfg.banks = banks;
            const auto stats = floorplanStats(cfg, sizes[i][0], 0);
            row.push_back(TextTable::num(stats.density(), 3));
        }
        measured.addRow(row);
    }
    bench::emit(measured,
                "Measured densities at paper benchmark sizes "
                "(SAM + CR cells, MSF excluded)",
                args, "fig07_measured");
    return 0;
}
