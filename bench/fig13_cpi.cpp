/**
 * @file
 * Fig. 13 reproduction: CPI (code beats per counted instruction) for the
 * seven benchmark programs across the six machine configurations (point
 * SAM with 1/2 banks, line SAM with 1/2/4 banks, conventional) at 1, 2,
 * and 4 magic-state factories.
 *
 * The shape to reproduce: with one factory, bv/cat/ghz show large LSQCA
 * penalties (no magic bottleneck to hide behind) while the arithmetic
 * and SELECT benchmarks stay close to conventional; more factories widen
 * the gap; more banks close it.
 *
 * The sweep itself is declarative: api::specs::fig13() (the same spec
 * `lsqca run specs/fig13.json` executes) expands into every
 * (benchmark x machine x factory) point and fans out over the sweep
 * engine (`--threads N`, `--shard i/N`); this file only renders the
 * tables. BENCH_fig13.json records per-job metrics.
 */

#include "api/paper_specs.h"
#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);
    const api::SweepSpec spec = api::specs::fig13(args.full);
    const bench::BenchRun bench_run = bench::runSpec(spec, args);
    if (!args.shard.isWhole())
        return 0; // a slice can't render the cross-machine tables

    const auto &loads = spec.axes[1].values;
    const std::size_t machines_per_load = spec.axes[2].values.size();
    bench::ResultCursor cursor(bench_run.run);
    for (std::int32_t factories : {1, 2, 4}) {
        TextTable table({"benchmark", "point#1", "point#2", "line#1",
                         "line#2", "line#4", "conventional",
                         "overhead(line#1)", "overhead(point#1)"});
        for (const auto &load : loads) {
            std::vector<double> cpis;
            for (std::size_t m = 0; m < machines_per_load; ++m)
                cpis.push_back(cursor.next().cpi);
            std::vector<std::string> row{load.name};
            for (double cpi : cpis)
                row.push_back(TextTable::num(cpi, 2));
            const double conv = cpis.back();
            row.push_back(TextTable::num(cpis[2] / conv, 2));
            row.push_back(TextTable::num(cpis[0] / conv, 2));
            table.addRow(row);
        }
        bench::emit(table,
                    "Fig. 13: CPI with " + std::to_string(factories) +
                        " magic-state factor" +
                        (factories == 1 ? "y" : "ies"),
                    args, "fig13_f" + std::to_string(factories));
    }
    return 0;
}
