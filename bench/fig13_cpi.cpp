/**
 * @file
 * Fig. 13 reproduction: CPI (code beats per counted instruction) for the
 * seven benchmark programs across the six machine configurations (point
 * SAM with 1/2 banks, line SAM with 1/2/4 banks, conventional) at 1, 2,
 * and 4 magic-state factories.
 *
 * The shape to reproduce: with one factory, bv/cat/ghz show large LSQCA
 * penalties (no magic bottleneck to hide behind) while the arithmetic
 * and SELECT benchmarks stay close to conventional; more factories widen
 * the gap; more banks close it.
 *
 * All (benchmark x machine x factory) points fan out over the sweep
 * engine (`--threads N`); results and tables are identical to the old
 * serial loop, and BENCH_fig13.json records per-job metrics.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const auto args = bench::parseArgs(argc, argv);
    const auto loads = bench::paperWorkloads(args.full);

    bench::Sweep sweep;
    for (std::int32_t factories : {1, 2, 4})
        for (const auto &load : loads)
            for (const auto &machine : bench::fig13Machines(factories))
                sweep.add(load.name + "/" + machine.label() + "/f" +
                              std::to_string(factories),
                          load.program, machine, load.prefix);
    sweep.run(args.threads);

    const std::size_t machines_per_load =
        bench::fig13Machines(1).size();
    for (std::int32_t factories : {1, 2, 4}) {
        TextTable table({"benchmark", "point#1", "point#2", "line#1",
                         "line#2", "line#4", "conventional",
                         "overhead(line#1)", "overhead(point#1)"});
        for (const auto &load : loads) {
            std::vector<double> cpis;
            for (std::size_t m = 0; m < machines_per_load; ++m)
                cpis.push_back(sweep.next().cpi);
            std::vector<std::string> row{load.name};
            for (double cpi : cpis)
                row.push_back(TextTable::num(cpi, 2));
            const double conv = cpis.back();
            row.push_back(TextTable::num(cpis[2] / conv, 2));
            row.push_back(TextTable::num(cpis[0] / conv, 2));
            table.addRow(row);
        }
        bench::emit(table,
                    "Fig. 13: CPI with " + std::to_string(factories) +
                        " magic-state factor" +
                        (factories == 1 ? "y" : "ies"),
                    args, "fig13_f" + std::to_string(factories));
    }
    sweep.writeJson("fig13", args);
    return 0;
}
