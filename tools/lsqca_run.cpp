/**
 * @file
 * lsqca_run — command-line driver for the whole pipeline.
 *
 * Synthesizes a named benchmark (or assembles an .lsq file), runs it on
 * a configurable machine, and prints results; can also emit the
 * closed-form resource estimate, the disassembly, or OpenQASM.
 *
 * Examples:
 *   lsqca_run --benchmark multiplier --sam line --banks 4
 *   lsqca_run --benchmark select --width 21 --hybrid 0.07 --factories 4
 *   lsqca_run --benchmark adder --estimate
 *   lsqca_run --benchmark ghz --emit-qasm
 *   lsqca_run --assemble program.lsq --sam point
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/estimator.h"
#include "analysis/trace_analysis.h"
#include "circuit/lowering.h"
#include "circuit/qasm.h"
#include "common/table.h"
#include "isa/assembler.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace {

using namespace lsqca;

struct Options
{
    std::string benchmark = "multiplier";
    std::optional<std::string> assemblePath;
    SamKind sam = SamKind::Line;
    std::int32_t banks = 1;
    std::int32_t factories = 1;
    double hybrid = 0.0;
    std::int32_t width = 11; // SELECT lattice width
    std::int64_t prefix = 0;
    PlacementPolicy placement = PlacementPolicy::RowMajor;
    bool estimateOnly = false;
    bool emitQasm = false;
    bool emitAsm = false;
    bool trace = false;
    bool compareConventional = true;
};

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: lsqca_run [options]\n"
        "  --benchmark NAME   adder|bv|cat|ghz|multiplier|square_root|"
        "select (default multiplier)\n"
        "  --assemble FILE    run an assembled .lsq program instead\n"
        "  --sam KIND         point|line|conventional (default line)\n"
        "  --banks N          SAM bank count (default 1)\n"
        "  --factories N      MSF count (default 1)\n"
        "  --hybrid F         conventional-region ratio in [0,1]\n"
        "  --width W          SELECT lattice width (default 11)\n"
        "  --prefix N         simulate only the first N instructions\n"
        "  --placement P      row-major|interleaved\n"
        "  --estimate         print the closed-form estimate and exit\n"
        "  --emit-qasm        print OpenQASM 2.0 and exit\n"
        "  --emit-asm         print LSQCA assembly and exit\n"
        "  --trace            include locality analysis in the report\n"
        "  --no-baseline      skip the conventional comparison run\n";
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--benchmark") {
            opt.benchmark = need(i);
        } else if (arg == "--assemble") {
            opt.assemblePath = need(i);
        } else if (arg == "--sam") {
            const std::string kind = need(i);
            if (kind == "point")
                opt.sam = SamKind::Point;
            else if (kind == "line")
                opt.sam = SamKind::Line;
            else if (kind == "conventional")
                opt.sam = SamKind::Conventional;
            else
                usage(2);
        } else if (arg == "--banks") {
            opt.banks = std::atoi(need(i));
        } else if (arg == "--factories") {
            opt.factories = std::atoi(need(i));
        } else if (arg == "--hybrid") {
            opt.hybrid = std::atof(need(i));
        } else if (arg == "--width") {
            opt.width = std::atoi(need(i));
        } else if (arg == "--prefix") {
            opt.prefix = std::atoll(need(i));
        } else if (arg == "--placement") {
            const std::string policy = need(i);
            if (policy == "row-major")
                opt.placement = PlacementPolicy::RowMajor;
            else if (policy == "interleaved")
                opt.placement = PlacementPolicy::Interleaved;
            else
                usage(2);
        } else if (arg == "--estimate") {
            opt.estimateOnly = true;
        } else if (arg == "--emit-qasm") {
            opt.emitQasm = true;
        } else if (arg == "--emit-asm") {
            opt.emitAsm = true;
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (arg == "--no-baseline") {
            opt.compareConventional = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(2);
        }
    }
    return opt;
}

Circuit
synthesize(const Options &opt)
{
    if (opt.benchmark == "adder")
        return makeAdder();
    if (opt.benchmark == "bv")
        return makeBernsteinVazirani();
    if (opt.benchmark == "cat")
        return makeCat();
    if (opt.benchmark == "ghz")
        return makeGhz();
    if (opt.benchmark == "multiplier")
        return makeMultiplier();
    if (opt.benchmark == "square_root")
        return makeSquareRoot();
    if (opt.benchmark == "select")
        return makeSelect({opt.width, 0});
    throw ConfigError("unknown benchmark: " + opt.benchmark);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options opt = parse(argc, argv);

        Program program = [&] {
            if (opt.assemblePath) {
                std::ifstream in(*opt.assemblePath);
                LSQCA_REQUIRE(in.good(), "cannot open " +
                                             *opt.assemblePath);
                std::ostringstream text;
                text << in.rdbuf();
                return assemble(text.str());
            }
            const Circuit circ = synthesize(opt);
            if (opt.emitQasm) {
                std::cout << toQasm(circ);
                std::exit(0);
            }
            return translate(lowerToCliffordT(circ));
        }();

        if (opt.emitAsm) {
            std::cout << program.disassemble();
            return 0;
        }

        ArchConfig cfg;
        cfg.sam = opt.sam;
        cfg.banks = opt.banks;
        cfg.factories = opt.factories;
        cfg.hybridFraction = opt.hybrid;
        cfg.placement = opt.placement;

        if (opt.estimateOnly) {
            const ResourceEstimate est = estimateResources(program, cfg);
            std::cout << est.report();
            const std::int32_t d = requiredCodeDistance(
                est.lowerBoundBeats, est.floorplan.totalCells);
            std::cout << "  code distance (1% run budget): " << d
                      << "\n  physical qubits      : "
                      << physicalQubits(est.floorplan.totalCells, d)
                      << "\n";
            return 0;
        }

        SimOptions sim_opts;
        sim_opts.arch = cfg;
        sim_opts.maxInstructions = opt.prefix;
        sim_opts.recordTrace = opt.trace;
        const SimResult r = simulate(program, sim_opts);

        TextTable table({"metric", "value"});
        table.addRow({"machine", cfg.label()});
        table.addRow({"placement", placementPolicyName(cfg.placement)});
        table.addRow({"instructions",
                      std::to_string(r.instructionsSimulated)});
        table.addRow({"execution [beats]",
                      std::to_string(r.execBeats)});
        table.addRow({"CPI", TextTable::num(r.cpi, 3)});
        table.addRow({"memory density",
                      TextTable::num(r.density(), 3)});
        table.addRow({"memory motion [beats]",
                      std::to_string(r.memoryBeats)});
        table.addRow({"magic consumed",
                      std::to_string(r.magicConsumed)});
        table.addRow({"magic stall [beats]",
                      std::to_string(r.magicStallBeats)});
        if (opt.compareConventional &&
            cfg.sam != SamKind::Conventional) {
            const SimResult conv = simulateConventional(
                program,
                {.factories = opt.factories,
                 .maxInstructions = opt.prefix});
            table.addRow(
                {"overhead vs conventional",
                 TextTable::num(static_cast<double>(r.execBeats) /
                                    static_cast<double>(conv.execBeats),
                                3)});
        }
        std::cout << table.render("lsqca_run");

        if (opt.trace) {
            const TraceAnalysis analysis(program, r);
            std::cout << "\nlocality: mean period "
                      << TextTable::num(analysis.meanPeriod(), 1)
                      << " beats, sequential fraction "
                      << TextTable::num(analysis.sequentialFraction(),
                                        3)
                      << ", magic interval "
                      << TextTable::num(
                             analysis.magicDemandInterval(), 2)
                      << " beats\n";
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "lsqca_run: " << e.what() << "\n";
        return 1;
    }
}
