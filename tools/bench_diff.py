#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on timing regressions.

The bench harness (SweepEngine / micro_kernels) writes
`bench/out/BENCH_<name>.json` with a list of named entries, each
carrying a flat metrics dict. This tool matches entries by name between
a baseline and a candidate run and:

  * fails (exit 1) when any *timing* metric regresses by more than
    --threshold (default 10%),
  * fails when any --exact metric differs at all (use for cpi /
    exec_beats: the sweep engine guarantees bit-identical results, so
    any drift is a correctness bug, not noise).

Timing metrics are those whose key matches --timing-regex
(default: wall_seconds / ns_per_*). Lower is better for all of them.

Sampled-estimator diagnostics (cpi_ci95 / sampling_error /
sampled_units, docs/SAMPLING.md) are skipped by default: they describe
the estimate's confidence, not the simulated machine, and legitimately
move when estimator internals are tuned. Pass --exact-all to compare
them as exact metrics too (e.g. when pinning a sampled run bit for
bit).

Usage:
  tools/bench_diff.py baseline.json candidate.json
  tools/bench_diff.py --threshold 0.05 --exact cpi,exec_beats a.json b.json
  tools/bench_diff.py --exact cpi --exact-all sampled_a.json sampled_b.json
"""

import argparse
import json
import re
import sys


KNOWN_SCHEMAS = ("lsqca-bench-v1", "lsqca-bench-v2")

# Estimator confidence diagnostics (docs/SAMPLING.md), not machine
# metrics: ignored unless --exact-all asks for them.
SAMPLED_KEYS = frozenset({"cpi_ci95", "sampling_error", "sampled_units"})


def load_entries(path):
    """Load a BENCH document (v1 or v2) as {entry name: flat metrics}.

    v2 entries carry a "breakdown" array (per-opcode latency splits,
    docs/OBSERVERS.md); it is flattened into dotted metric keys
    (breakdown.CX.pick, breakdown.CX.count, ...) so --exact can cover
    them. Comparing a v1 baseline against a v2 candidate (or vice
    versa) works: only metrics present on both sides are compared.
    """
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema is not None and schema not in KNOWN_SCHEMAS:
        sys.exit(f"bench_diff: {path}: unknown schema {schema!r} "
                 f"(expected one of {', '.join(KNOWN_SCHEMAS)})")
    entries = {}
    for position, entry in enumerate(doc.get("entries", [])):
        if "name" not in entry:
            sys.exit(f"bench_diff: {path}: entry {position} has no "
                     f"\"name\" (not a lsqca-bench document?)")
        metrics = dict(entry.get("metrics", {}))
        for row in entry.get("breakdown", []):
            prefix = f"breakdown.{row.get('op', '?')}"
            metrics[f"{prefix}.count"] = row.get("count", 0)
            metrics[f"{prefix}.beats"] = row.get("beats", 0)
            for component, beats in row.get("split", {}).items():
                metrics[f"{prefix}.{component}"] = beats
        entries[entry["name"]] = metrics
    return doc, entries


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="allowed fractional regression on timing metrics "
             "(default 0.10 = 10%%)")
    parser.add_argument(
        "--timing-regex", default=r"wall_seconds|ns_per",
        help="metrics matching this regex are compared as timings "
             "(lower is better)")
    parser.add_argument(
        "--exact", default="",
        help="comma-separated metrics that must match exactly "
             "(e.g. cpi,exec_beats)")
    parser.add_argument(
        "--exact-all", action="store_true",
        help="also compare the sampled-estimator diagnostics "
             "(cpi_ci95, sampling_error, sampled_units) as exact "
             "metrics instead of skipping them")
    parser.add_argument(
        "--min-seconds", type=float, default=1e-4,
        help="skip timing comparisons when both sides are below this "
             "(too noisy to judge)")
    args = parser.parse_args()

    timing = re.compile(args.timing_regex)
    exact = {m for m in args.exact.split(",") if m}
    if args.exact_all:
        exact |= SAMPLED_KEYS

    base_doc, base = load_entries(args.baseline)
    cand_doc, cand = load_entries(args.candidate)

    shared = sorted(set(base) & set(cand))
    if not shared:
        print("bench_diff: no shared entries between "
              f"{args.baseline} and {args.candidate}", file=sys.stderr)
        return 1

    # An entry on only one side means the two runs are not the same
    # experiment (renamed sweep point, truncated shard, partial
    # merge); name the culprits and fail instead of quietly comparing
    # the intersection.
    failures = []
    for name in sorted(set(base) - set(cand)):
        failures.append(f"entry \"{name}\" is in the baseline "
                        f"({args.baseline}) but missing from the "
                        f"candidate ({args.candidate})")
    for name in sorted(set(cand) - set(base)):
        failures.append(f"entry \"{name}\" is in the candidate "
                        f"({args.candidate}) but missing from the "
                        f"baseline ({args.baseline})")
    compared = 0
    for name in shared:
        b_metrics, c_metrics = base[name], cand[name]
        for key in sorted(set(b_metrics) & set(c_metrics)):
            b_val, c_val = b_metrics[key], c_metrics[key]
            if not isinstance(b_val, (int, float)) or isinstance(
                    b_val, bool):
                continue
            if key in SAMPLED_KEYS and not args.exact_all:
                continue
            if key in exact:
                compared += 1
                if b_val != c_val:
                    failures.append(
                        f"{name}.{key}: expected exact match, "
                        f"baseline={b_val} candidate={c_val}")
                continue
            if not timing.search(key):
                continue
            # Noise guard: sub-threshold wall times are too jittery to
            # judge; derived ns_per_* metrics from the same measurement
            # inherit that jitter, so key the skip off the entry's wall
            # time in both cases.
            b_wall = b_metrics.get("wall_seconds", b_val
                                   if "seconds" in key else None)
            c_wall = c_metrics.get("wall_seconds", c_val
                                   if "seconds" in key else None)
            if (isinstance(b_wall, (int, float))
                    and isinstance(c_wall, (int, float))
                    and b_wall < args.min_seconds
                    and c_wall < args.min_seconds):
                continue
            compared += 1
            if b_val <= 0:
                continue
            change = (c_val - b_val) / b_val
            marker = ""
            if change > args.threshold:
                failures.append(
                    f"{name}.{key}: {b_val:.6g} -> {c_val:.6g} "
                    f"(+{change * 100:.1f}% > "
                    f"{args.threshold * 100:.0f}%)")
                marker = "  <-- REGRESSION"
            print(f"  {name}.{key}: {b_val:.6g} -> {c_val:.6g} "
                  f"({change * +100:+.1f}%){marker}")

    print(f"bench_diff: {len(shared)} shared entries, "
          f"{compared} metrics compared, {len(failures)} failures")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
