/**
 * @file
 * lsqca — the declarative experiment driver. Turns spec files
 * (the `specs/` directory, schema lsqca-spec-v1) into sweeps without
 * writing or compiling any C++:
 *
 *   lsqca run specs/fig13.json            # expand + simulate + BENCH json
 *   lsqca run specs/smoke.json --shard 0/4 --no-timing
 *   lsqca expand specs/fig13.json         # dry-run the job list
 *   lsqca list                            # registry + builtin specs
 *   lsqca merge --out all.json BENCH_smoke.shard*.json
 *   lsqca spec fig13                      # dump a builtin spec as JSON
 *
 * Shards are contiguous slices of the expanded job vector; merged
 * shard BENCH documents are byte-identical to the unsharded run when
 * both use --no-timing. See docs/SPEC.md for the spec schema.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/paper_specs.h"
#include "api/registry.h"
#include "api/serialize.h"
#include "api/spec.h"
#include "common/error.h"
#include "common/table.h"

namespace {

using namespace lsqca;
using namespace lsqca::api;

int
usage(std::ostream &out, int code)
{
    out <<
        "usage: lsqca <command> [options]\n"
        "\n"
        "commands:\n"
        "  run <spec>          expand and simulate a sweep spec (a\n"
        "                      .json path, or a builtin name)\n"
        "      --threads N       sweep workers (0 = hardware)\n"
        "      --out DIR         BENCH output dir (default bench/out)\n"
        "      --shard i/N       run a contiguous slice of the sweep\n"
        "      --no-timing       zero wall-clock fields (deterministic"
        " output)\n"
        "      --full            builtin specs only: drop prefixes\n"
        "  expand <spec>       validate a spec and print its job list\n"
        "      --shard i/N       print only that slice\n"
        "      --full            builtin specs only: drop prefixes\n"
        "  list                registered benchmarks and builtin specs\n"
        "  merge <json...>     merge shard BENCH documents\n"
        "      --out FILE        write merged doc (default stdout)\n"
        "  spec <name>         print a builtin spec (fig13|fig14|fig15|"
        "ablation|smoke)\n"
        "      --full            drop steady-state prefixes\n";
    return code;
}

[[noreturn]] void
badArg(const std::string &message)
{
    throw ConfigError(message + " (see `lsqca --help`)");
}

const char *
needValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        badArg(std::string("missing value for ") + argv[i]);
    return argv[++i];
}

/** Load a spec file, or resolve a builtin name (fig13, smoke, ...). */
SweepSpec
loadSpecArg(const std::string &arg, bool full)
{
    if (arg.size() > 5 && arg.substr(arg.size() - 5) == ".json") {
        if (full)
            badArg("--full applies only to builtin spec names; spec "
                   "files encode their own prefixes");
        return SweepSpec::load(arg);
    }
    return specs::byName(arg, full);
}

int
cmdRun(int argc, char **argv)
{
    std::string specArg;
    bool full = false;
    RunSpecOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads")
            options.threads =
                parseThreadCount(needValue(argc, argv, i));
        else if (arg == "--out")
            options.outDir = needValue(argc, argv, i);
        else if (arg == "--shard")
            options.shard = ShardRange::parse(needValue(argc, argv, i));
        else if (arg == "--no-timing")
            options.noTiming = true;
        else if (arg == "--full")
            full = true;
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown run option " + arg);
        else if (specArg.empty())
            specArg = arg;
        else
            badArg("run takes exactly one spec");
    }
    if (specArg.empty())
        badArg("run needs a spec file");

    const SweepSpec spec = loadSpecArg(specArg, full);
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const SpecRun run = runSpec(spec, registry, options);

    TextTable table({"name", "cpi", "exec_beats", "density"});
    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        const SimResult &r = run.report.results[i];
        table.addRow({run.jobs[i].name, TextTable::num(r.cpi, 3),
                      std::to_string(r.execBeats),
                      TextTable::num(r.density(), 3)});
    }
    std::cout << table.render("lsqca run: " + spec.name);
    return 0;
}

int
cmdExpand(int argc, char **argv)
{
    std::string specArg;
    bool full = false;
    ShardRange shard;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--shard")
            shard = ShardRange::parse(needValue(argc, argv, i));
        else if (arg == "--full")
            full = true;
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown expand option " + arg);
        else if (specArg.empty())
            specArg = arg;
        else
            badArg("expand takes exactly one spec");
    }
    if (specArg.empty())
        badArg("expand needs a spec file");

    const SweepSpec spec = loadSpecArg(specArg, full);
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const std::vector<ExpandedJob> jobs = expandSpec(spec, registry);
    const auto [begin, end] = shard.bounds(jobs.size());

    TextTable table({"#", "name", "bench", "params", "machine",
                     "prefix"});
    for (std::size_t i = begin; i < end; ++i) {
        const ExpandedJob &job = jobs[i];
        table.addRow({std::to_string(i), job.name, job.bench,
                      job.params.dump(0), job.options.arch.label(),
                      std::to_string(job.options.maxInstructions)});
    }
    std::cout << table.render("lsqca expand: " + spec.name + " (" +
                              std::to_string(end - begin) + " of " +
                              std::to_string(jobs.size()) + " jobs)");
    return 0;
}

int
cmdList()
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    TextTable benches({"benchmark", "default params", "summary"});
    for (const BenchmarkEntry &entry : registry.entries())
        benches.addRow({entry.name,
                        entry.canonicalize(Json()).dump(0),
                        entry.summary});
    std::cout << benches.render("registered benchmarks") << "\n";

    TextTable builtin({"spec", "jobs", "axes"});
    for (const char *name :
         {"fig13", "fig14", "fig15", "ablation", "smoke"}) {
        const SweepSpec spec = specs::byName(name);
        std::string shape;
        for (const SweepAxis &axis : spec.axes) {
            if (!shape.empty())
                shape += " x ";
            shape += axis.label + "(" +
                     std::to_string(axis.values.size()) + ")";
        }
        builtin.addRow(
            {name,
             std::to_string(expandSpec(spec, registry).size()), shape});
    }
    std::cout << builtin.render("builtin specs (lsqca spec <name>)");
    return 0;
}

int
cmdMerge(int argc, char **argv)
{
    std::string outPath;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out")
            outPath = needValue(argc, argv, i);
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown merge option " + arg);
        else
            paths.push_back(arg);
    }
    if (paths.empty())
        badArg("merge needs at least one BENCH json");

    std::vector<Json> docs;
    docs.reserve(paths.size());
    for (const std::string &path : paths)
        docs.push_back(Json::load(path));
    const Json merged = mergeBenchReports(docs);
    if (outPath.empty()) {
        std::cout << merged.dump();
    } else {
        merged.write(outPath);
        std::cerr << "merged " << paths.size() << " documents -> "
                  << outPath << "\n";
    }
    return 0;
}

int
cmdSpec(int argc, char **argv)
{
    std::string name;
    bool full = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--full")
            full = true;
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown spec option " + arg);
        else if (name.empty())
            name = arg;
        else
            badArg("spec takes exactly one name");
    }
    if (name.empty())
        badArg("spec needs a builtin name");
    std::cout << specs::byName(name, full).toJson().dump();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "--help" || command == "-h" || command == "help")
        return usage(std::cout, 0);
    try {
        if (command == "run")
            return cmdRun(argc, argv);
        if (command == "expand")
            return cmdExpand(argc, argv);
        if (command == "list")
            return cmdList();
        if (command == "merge")
            return cmdMerge(argc, argv);
        if (command == "spec")
            return cmdSpec(argc, argv);
        std::cerr << "lsqca: unknown command \"" << command << "\"\n";
        return usage(std::cerr, 2);
    } catch (const std::exception &e) {
        std::cerr << "lsqca: " << e.what() << "\n";
        return 1;
    }
}
