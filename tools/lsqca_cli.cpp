/**
 * @file
 * lsqca — the declarative experiment driver. Turns spec files
 * (the `specs/` directory, schema lsqca-spec-v1) into sweeps without
 * writing or compiling any C++:
 *
 *   lsqca run specs/fig13.json            # expand + simulate + BENCH json
 *   lsqca run specs/smoke.json --shard 0/4 --no-timing
 *   lsqca expand specs/fig13.json         # dry-run the job list
 *   lsqca list                            # registry + builtin specs
 *   lsqca merge --out all.json BENCH_smoke.shard*.json
 *   lsqca spec fig13                      # dump a builtin spec as JSON
 *
 * Shards are contiguous slices of the expanded job vector; merged
 * shard BENCH documents are byte-identical to the unsharded run when
 * both use --no-timing. See docs/SPEC.md for the spec schema.
 *
 * The orchestration service (src/service, docs/SERVICE.md) fans those
 * shards across worker processes on this machine:
 *
 *   lsqca submit specs/fig13.json --workers 4 --no-timing
 *   lsqca status bench/service/fig13_cpi
 *   lsqca resume bench/service/fig13_cpi
 *
 * `submit` expands the spec into shard tasks, persists them in
 * queue.json (schema lsqca-queue-v1), dispatches `lsqca run --shard`
 * workers, retries crashed/timed-out/straggling shards, serves
 * already-computed shards from a content-addressed result cache, and
 * merges the shards into the same artifact a direct run writes.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>

#include "api/paper_specs.h"
#include "api/registry.h"
#include "api/serialize.h"
#include "api/spec.h"
#include "common/error.h"
#include "common/fs.h"
#include "common/jsonl.h"
#include "common/metrics.h"
#include "common/shutdown.h"
#include "common/subprocess.h"
#include "common/table.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "service/cache.h"
#include "service/journal.h"
#include "service/orchestrator.h"
#include "service/report.h"
#include "sim/collectors/bank_heatmap.h"
#include "sim/collectors/jsonl_writer.h"
#include "sim/collectors/stall_attribution.h"
#include "sim/collectors/timeline.h"
#include "sim/collectors/trace_collector.h"

namespace {

using namespace lsqca;
using namespace lsqca::api;

int
usage(std::ostream &out, int code)
{
    out <<
        "usage: lsqca <command> [options]\n"
        "\n"
        "commands:\n"
        "  trace <spec>        run ONE job of a spec with telemetry\n"
        "                      collectors attached (docs/OBSERVERS.md)\n"
        "      --job N           job index in the expanded sweep (default"
        " 0)\n"
        "      --events FILE     write JSONL events here (\"-\" = stdout;\n"
        "                        default <out>/TRACE_<spec>.jsonl)\n"
        "      --out DIR         default dir for --events (default"
        " bench/out)\n"
        "      --timeline N      issue-record ring capacity (default"
        " 4096)\n"
        "      --no-cells        skip bank cell events in the JSONL\n"
        "      --full            builtin specs only: drop prefixes\n"
        "  run <spec>          expand and simulate a sweep spec (a\n"
        "                      .json path, or a builtin name)\n"
        "      --threads N       sweep workers (0 = hardware)\n"
        "      --out DIR         BENCH output dir (default bench/out)\n"
        "      --shard i/N       run a contiguous slice of the sweep\n"
        "      --no-timing       zero wall-clock fields (deterministic"
        " output)\n"
        "      --timeout-seconds S  abort (exit 124) past this wall"
        " budget\n"
        "      --seed-check HEX  require this shard fingerprint\n"
        "      --force-exact     ignore the spec's estimator block and\n"
        "                        run every job exactly (docs/SAMPLING.md)\n"
        "      --job-cache DIR   splice already-computed jobs from (and\n"
        "                        publish new ones to) a job-granularity\n"
        "                        result cache (docs/SERVICE.md)\n"
        "      --metrics FILE    write a sweep/pool metrics snapshot\n"
        "                        (\"-\" = stdout; docs/METRICS.md)\n"
        "      --full            builtin specs only: drop prefixes\n"
        "  expand <spec>       validate a spec and print its job list\n"
        "      --shard i/N       print only that slice\n"
        "      --full            builtin specs only: drop prefixes\n"
        "  list                registered benchmarks and builtin specs\n"
        "  merge <json|dir...> merge shard BENCH documents (a directory"
        " adds its BENCH_*.json files)\n"
        "      --out FILE        write merged doc (default stdout)\n"
        "  spec <name>         print a builtin spec (fig13|fig14|"
        "fig14_sampled|fig15|ablation|smoke)\n"
        "      --full            drop steady-state prefixes\n"
        "  submit <spec.json>  run a spec as a multi-worker campaign\n"
        "      --workers K       concurrent worker processes (default"
        " 2)\n"
        "      --shards N        shard count (default min(jobs, 4K))\n"
        "      --threads N       sweep threads per worker (default 1)\n"
        "      --state DIR       campaign dir (default bench/service/"
        "<spec name>)\n"
        "      --cache DIR       result cache (default <state>/cache)\n"
        "      --no-cache        disable the result cache\n"
        "      --out DIR         merged BENCH dir (default <state>)\n"
        "      --no-timing       deterministic artifact bytes\n"
        "      --timeout-seconds S  per-attempt hard limit\n"
        "      --straggler-factor F deadline = F x median shard wall\n"
        "      --max-attempts M  spawn budget per shard (default 3)\n"
        "      --no-seed-check   skip worker fingerprint verification\n"
        "      --clock MODE      journal time base: monotonic|logical\n"
        "                        (logical stamps deterministic counters;"
        " reruns\n"
        "                        journal byte-identically)\n"
        "      --no-journal      do not write events.jsonl\n"
        "      --daemon SOCK     submit to a running `lsqca serve`\n"
        "                        daemon instead (supports --shards,\n"
        "                        --no-timing, --max-attempts, --weight,\n"
        "                        --wait; pool knobs live on serve)\n"
        "      --weight W        daemon fair-share weight (default 1)\n"
        "      --wait            daemon only: stream the journal and\n"
        "                        block until the campaign finishes\n"
        "      (one-shot submit/resume catch SIGINT/SIGTERM: workers\n"
        "       are reaped, the queue saved, and the exit code is\n"
        "       128+signal; `lsqca resume` continues the campaign)\n"
        "  status <state-dir>  show a campaign's queue (with per-shard\n"
        "                      age from the journal when present)\n"
        "      --daemon SOCK     ask a daemon instead: with a campaign\n"
        "                        name shows its queue, with no argument\n"
        "                        lists every campaign under the root\n"
        "  resume <state-dir>  continue an interrupted campaign\n"
        "      (accepts the submit runtime flags: --workers, --threads,"
        " --cache,\n"
        "       --no-cache, --out, --timeout-seconds, --straggler-"
        "factor,\n"
        "       --max-attempts, --no-seed-check, --clock, --no-journal)\n"
        "  report <state-dir>  reconstruct a campaign's history from its\n"
        "                      events.jsonl journal alone: wall-clock\n"
        "                      breakdown, retry causes, cache hit rate,\n"
        "                      escalations, worker utilization"
        " (docs/METRICS.md)\n"
        "      --chrome-trace FILE  also export a chrome://tracing /\n"
        "                      Perfetto trace (one track per worker,\n"
        "                      one span per shard attempt)\n"
        "  serve <root>        run the multi-tenant sweep daemon on\n"
        "                      <root>/daemon.sock (docs/DAEMON.md):\n"
        "                      admits concurrent campaigns over a\n"
        "                      line-JSON control protocol and schedules\n"
        "                      their shards fairly over ONE worker pool\n"
        "      --workers K       global worker-process pool (default"
        " 2)\n"
        "      --socket PATH     control socket (default <root>/"
        "daemon.sock)\n"
        "      --cache DIR       shared result cache (default <root>/"
        "cache)\n"
        "      --threads N       sweep threads per worker (default 1)\n"
        "      --timeout-seconds S  per-attempt hard limit\n"
        "      --straggler-factor F deadline = F x median shard wall\n"
        "      --max-attempts M  default spawn budget per shard\n"
        "      --poll-seconds S  scheduler poll cadence (default"
        " 0.02)\n"
        "      --clock MODE      journal time base: monotonic|logical\n"
        "  watch <campaign>    stream a campaign's journal\n"
        "                      (lsqca-events-v1 lines) from a daemon\n"
        "                      until the campaign finishes\n"
        "      --daemon SOCK     daemon control socket (required)\n"
        "  cancel <campaign>   stop an active daemon campaign; workers\n"
        "                      are killed, the queue stays resumable\n"
        "      --daemon SOCK     daemon control socket (required)\n"
        "  drain               let active campaigns finish, admit\n"
        "                      nothing new, then the daemon exits\n"
        "      --daemon SOCK     daemon control socket (required)\n";
    return code;
}

[[noreturn]] void
badArg(const std::string &message)
{
    throw ConfigError(message + " (see `lsqca --help`)");
}

const char *
needValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        badArg(std::string("missing value for ") + argv[i]);
    return argv[++i];
}

std::int32_t
parseCount(const std::string &text, const std::string &flag,
           std::int32_t min, std::int32_t max)
{
    try {
        std::size_t used = 0;
        const int value = std::stoi(text, &used);
        LSQCA_REQUIRE(used == text.size() && value >= min &&
                          value <= max,
                      "bad count");
        return value;
    } catch (const std::exception &) {
        throw ConfigError(flag + " expects an integer in [" +
                          std::to_string(min) + ", " +
                          std::to_string(max) + "], got \"" + text +
                          "\"");
    }
}

/** Load a spec file, or resolve a builtin name (fig13, smoke, ...). */
SweepSpec
loadSpecArg(const std::string &arg, bool full)
{
    if (arg.size() > 5 && arg.substr(arg.size() - 5) == ".json") {
        if (full)
            badArg("--full applies only to builtin spec names; spec "
                   "files encode their own prefixes");
        return SweepSpec::load(arg);
    }
    return specs::byName(arg, full);
}

/** JsonlWriter with an optional cell-event mute (`--no-cells`). */
class TraceJsonl : public collectors::JsonlWriter
{
  public:
    TraceJsonl(std::ostream &out, bool cells)
        : collectors::JsonlWriter(out), cells_(cells)
    {
    }

    void
    onBankCell(const BankCellEvent &event) override
    {
        if (cells_)
            collectors::JsonlWriter::onBankCell(event);
    }

  private:
    bool cells_;
};

int
cmdTrace(int argc, char **argv)
{
    std::string specArg;
    std::string eventsPath;
    std::string outDir = "bench/out";
    bool full = false;
    bool cells = true;
    std::int32_t jobIndex = 0;
    std::int32_t timelineCap = 4096;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--job")
            jobIndex = parseCount(needValue(argc, argv, i), "--job", 0,
                                  (1 << 30));
        else if (arg == "--events")
            eventsPath = needValue(argc, argv, i);
        else if (arg == "--out")
            outDir = needValue(argc, argv, i);
        else if (arg == "--timeline")
            timelineCap = parseCount(needValue(argc, argv, i),
                                     "--timeline", 1, 1 << 24);
        else if (arg == "--no-cells")
            cells = false;
        else if (arg == "--full")
            full = true;
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown trace option " + arg);
        else if (specArg.empty())
            specArg = arg;
        else
            badArg("trace takes exactly one spec");
    }
    if (specArg.empty())
        badArg("trace needs a spec file");

    const SweepSpec spec = loadSpecArg(specArg, full);
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const std::vector<ExpandedJob> jobs = expandSpec(spec, registry);
    LSQCA_REQUIRE(static_cast<std::size_t>(jobIndex) < jobs.size(),
                  "--job " + std::to_string(jobIndex) +
                      " is out of range: spec \"" + spec.name +
                      "\" expands to " + std::to_string(jobs.size()) +
                      " jobs (see `lsqca expand`)");
    const ExpandedJob &job = jobs[static_cast<std::size_t>(jobIndex)];
    const Program &program =
        registry.program(job.bench, job.params, job.translate);

    // One job, every built-in collector attached. The JSONL stream
    // goes straight to a sibling temp file (a long trace with cell
    // events can dwarf memory) and rename() publishes it whole, so a
    // rerun stays byte-comparable and a crash never leaves a torn
    // file at the final path (jsonl::Export, shared with `lsqca
    // report --chrome-trace`).
    collectors::StallAttribution stalls;
    collectors::BankHeatmap heatmap;
    collectors::Timeline timeline(
        static_cast<std::size_t>(timelineCap));
    if (eventsPath.empty())
        eventsPath = outDir + "/TRACE_" + spec.name + ".jsonl";
    jsonl::Export events(eventsPath);
    TraceJsonl jsonl(events.stream(), cells);
    SimOptions options = job.options;
    options.observers = {&stalls, &heatmap, &timeline, &jsonl};
    const SimResult result = simulate(program, options);
    events.publish();

    if (events.toStdout()) {
        // Keep stdout a pure JSONL stream (pipeable); the tables are
        // available by writing events to a file instead.
        std::cerr << "trace: " << jsonl.lines() << " events ("
                  << timeline.seen() << " instructions) -> stdout\n";
        return 0;
    }

    TextTable summary({"metric", "value"});
    summary.addRow({"job", job.name});
    summary.addRow({"machine", job.options.arch.label()});
    summary.addRow({"instructions",
                    std::to_string(result.instructionsSimulated)});
    summary.addRow({"exec [beats]", std::to_string(result.execBeats)});
    summary.addRow({"CPI", TextTable::num(result.cpi, 3)});
    summary.addRow({"memory motion [beats]",
                    std::to_string(result.memoryBeats)});
    summary.addRow({"magic stall [beats]",
                    std::to_string(result.magicStallBeats)});
    summary.addRow({"density", TextTable::num(result.density(), 3)});
    std::cout << summary.render("lsqca trace: " + spec.name + " job #" +
                                std::to_string(jobIndex));
    std::cout << "\n"
              << stalls.table().render(
                     "stall attribution (beats by component)");
    for (std::size_t b = 0; b < heatmap.banks().size(); ++b) {
        if (heatmap.banks()[b].cells.empty())
            continue;
        std::cout << "\n"
                  << heatmap.table(b).render(
                         "bank " + std::to_string(b) +
                         " heat (occupancy share, touches)");
    }
    std::cerr << "trace: " << jsonl.lines() << " events ("
              << timeline.seen() << " instructions) -> " << eventsPath
              << "\n";
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    std::string specArg;
    std::string metricsPath;
    std::string jobCacheDir;
    bool full = false;
    double sleepSeconds = 0.0;
    RunSpecOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads")
            options.threads =
                parseThreadCount(needValue(argc, argv, i));
        else if (arg == "--metrics")
            metricsPath = needValue(argc, argv, i);
        else if (arg == "--out")
            options.outDir = needValue(argc, argv, i);
        else if (arg == "--shard")
            options.shard = ShardRange::parse(needValue(argc, argv, i));
        else if (arg == "--no-timing")
            options.noTiming = true;
        else if (arg == "--timeout-seconds")
            options.timeoutSeconds =
                parseTimeoutSeconds(needValue(argc, argv, i));
        else if (arg == "--seed-check")
            options.seedCheck =
                parseFingerprintArg(needValue(argc, argv, i));
        else if (arg == "--force-exact")
            options.forceExact = true;
        else if (arg == "--job-cache")
            jobCacheDir = needValue(argc, argv, i);
        else if (arg == "--die-after")
            // Test-only crash hook (see docs/SERVICE.md): simulate N
            // jobs, then exit kDieAfterExitCode without output.
            options.dieAfter = parseCount(needValue(argc, argv, i),
                                          "--die-after", 0, 1 << 30);
        else if (arg == "--test-sleep-seconds")
            // Test-only latency hook: hold the worker before it
            // simulates, so signal/drain paths can catch a campaign
            // verifiably mid-flight (docs/DAEMON.md).
            sleepSeconds =
                parseTimeoutSeconds(needValue(argc, argv, i));
        else if (arg == "--full")
            full = true;
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown run option " + arg);
        else if (specArg.empty())
            specArg = arg;
        else
            badArg("run takes exactly one spec");
    }
    if (specArg.empty())
        badArg("run needs a spec file");

    const SweepSpec spec = loadSpecArg(specArg, full);
    BenchmarkRegistry registry = BenchmarkRegistry::paper();
    metrics::Registry metrics;
    if (!metricsPath.empty())
        options.metrics = &metrics;
    // An empty dir constructs a disabled cache, so the adapter is only
    // wired in when the flag was given.
    service::ResultCache jobCacheStore(jobCacheDir);
    service::JobCacheAdapter jobCacheAdapter(jobCacheStore);
    if (jobCacheStore.enabled())
        options.jobCache = &jobCacheAdapter;
    if (sleepSeconds > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleepSeconds));
    const SpecRun run = runSpec(spec, registry, options);
    if (!metricsPath.empty()) {
        if (metricsPath == "-")
            std::cout << metrics.toJson().dump() << "\n";
        else
            fsutil::writeFileAtomic(metricsPath,
                                    metrics.toJson().dump(2) + "\n");
    }

    TextTable table({"name", "cpi", "exec_beats", "density"});
    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        const SimResult &r = run.report.results[i];
        table.addRow({run.jobs[i].name, TextTable::num(r.cpi, 3),
                      std::to_string(r.execBeats),
                      TextTable::num(r.density(), 3)});
    }
    std::cout << table.render("lsqca run: " + spec.name);
    return 0;
}

int
cmdExpand(int argc, char **argv)
{
    std::string specArg;
    bool full = false;
    ShardRange shard;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--shard")
            shard = ShardRange::parse(needValue(argc, argv, i));
        else if (arg == "--full")
            full = true;
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown expand option " + arg);
        else if (specArg.empty())
            specArg = arg;
        else
            badArg("expand takes exactly one spec");
    }
    if (specArg.empty())
        badArg("expand needs a spec file");

    const SweepSpec spec = loadSpecArg(specArg, full);
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    const std::vector<ExpandedJob> jobs = expandSpec(spec, registry);
    const auto [begin, end] = shard.bounds(jobs.size());

    TextTable table({"#", "name", "bench", "params", "machine",
                     "prefix"});
    for (std::size_t i = begin; i < end; ++i) {
        const ExpandedJob &job = jobs[i];
        table.addRow({std::to_string(i), job.name, job.bench,
                      job.params.dump(0), job.options.arch.label(),
                      std::to_string(job.options.maxInstructions)});
    }
    std::cout << table.render("lsqca expand: " + spec.name + " (" +
                              std::to_string(end - begin) + " of " +
                              std::to_string(jobs.size()) + " jobs)");
    return 0;
}

int
cmdList()
{
    const BenchmarkRegistry registry = BenchmarkRegistry::paper();
    TextTable benches({"benchmark", "default params", "summary"});
    for (const BenchmarkEntry &entry : registry.entries())
        benches.addRow({entry.name,
                        entry.canonicalize(Json()).dump(0),
                        entry.summary});
    std::cout << benches.render("registered benchmarks") << "\n";

    TextTable builtin({"spec", "jobs", "axes"});
    for (const char *name : {"fig13", "fig14", "fig14_sampled", "fig15",
                             "ablation", "smoke"}) {
        const SweepSpec spec = specs::byName(name);
        std::string shape;
        for (const SweepAxis &axis : spec.axes) {
            if (!shape.empty())
                shape += " x ";
            shape += axis.label + "(" +
                     std::to_string(axis.values.size()) + ")";
        }
        builtin.addRow(
            {name,
             std::to_string(expandSpec(spec, registry).size()), shape});
    }
    std::cout << builtin.render("builtin specs (lsqca spec <name>)");
    return 0;
}

int
cmdMerge(int argc, char **argv)
{
    std::string outPath;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out")
            outPath = needValue(argc, argv, i);
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown merge option " + arg);
        else if (fsutil::isDirectory(arg)) {
            // A directory contributes its BENCH_*.json files in
            // name order (shard suffixes sort correctly up to 9
            // shards; merge re-orders by shard marker anyway).
            const std::vector<std::string> found =
                fsutil::listFiles(arg, "BENCH_", ".json");
            LSQCA_REQUIRE(!found.empty(),
                          arg + " contains no BENCH_*.json files");
            paths.insert(paths.end(), found.begin(), found.end());
        } else
            paths.push_back(arg);
    }
    if (paths.empty())
        badArg("merge needs at least one BENCH json");

    std::vector<Json> docs;
    docs.reserve(paths.size());
    for (const std::string &path : paths)
        docs.push_back(Json::load(path));
    const Json merged = mergeBenchReports(docs, paths);
    if (outPath.empty()) {
        std::cout << merged.dump();
    } else {
        merged.write(outPath);
        std::cerr << "merged " << paths.size() << " documents -> "
                  << outPath << "\n";
    }
    return 0;
}

int
cmdSpec(int argc, char **argv)
{
    std::string name;
    bool full = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--full")
            full = true;
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown spec option " + arg);
        else if (name.empty())
            name = arg;
        else
            badArg("spec takes exactly one name");
    }
    if (name.empty())
        badArg("spec needs a builtin name");
    std::cout << specs::byName(name, full).toJson().dump();
    return 0;
}

double
parseStragglerFactor(const std::string &text)
{
    try {
        std::size_t used = 0;
        const double factor = std::stod(text, &used);
        LSQCA_REQUIRE(used == text.size() && factor >= 1.0 &&
                          factor <= 1e6,
                      "bad factor");
        return factor;
    } catch (const std::exception &) {
        throw ConfigError("--straggler-factor expects a number in "
                          "[1, 1e6], got \"" +
                          text + "\"");
    }
}

/**
 * Shared flag parsing for submit/resume: everything except the spec
 * argument and --state/--shards/--no-timing semantics, which differ.
 */
void
readServiceFlag(const std::string &arg, int argc, char **argv, int &i,
                service::OrchestratorOptions &options, bool &known)
{
    known = true;
    if (arg == "--workers")
        options.workers = parseCount(needValue(argc, argv, i),
                                     "--workers", 1, 1024);
    else if (arg == "--threads")
        options.threadsPerWorker =
            parseThreadCount(needValue(argc, argv, i));
    else if (arg == "--cache")
        options.cacheDir = needValue(argc, argv, i);
    else if (arg == "--no-cache")
        options.useCache = false;
    else if (arg == "--out")
        options.outDir = needValue(argc, argv, i);
    else if (arg == "--timeout-seconds")
        options.timeoutSeconds =
            parseTimeoutSeconds(needValue(argc, argv, i));
    else if (arg == "--straggler-factor")
        options.stragglerFactor =
            parseStragglerFactor(needValue(argc, argv, i));
    else if (arg == "--max-attempts")
        options.maxAttempts = parseCount(needValue(argc, argv, i),
                                         "--max-attempts", 1, 1000);
    else if (arg == "--no-seed-check")
        options.seedCheck = false;
    else if (arg == "--clock")
        options.clock =
            service::journalClockFromName(needValue(argc, argv, i));
    else if (arg == "--no-journal")
        options.journal = false;
    else if (arg == "--test-die-after")
        // Test hook: shard first attempts die mid-shard (exit 75)
        // after N jobs, exercising the crash/retry path.
        options.firstAttemptExtraArgs = {
            "--die-after", std::to_string(parseCount(
                               needValue(argc, argv, i),
                               "--test-die-after", 0, 1 << 30))};
    else if (arg == "--test-stop-after")
        // Test hook: simulate orchestrator death after N dispatches.
        options.stopAfterDispatches = parseCount(
            needValue(argc, argv, i), "--test-stop-after", 1, 1 << 30);
    else if (arg == "--test-worker-sleep") {
        // Test hook: every worker sleeps before simulating, keeping
        // the campaign verifiably mid-flight for signal tests.
        const std::string seconds = needValue(argc, argv, i);
        parseTimeoutSeconds(seconds);
        options.extraWorkerArgs = {"--test-sleep-seconds", seconds};
    } else
        known = false;
}

/** Render a campaign outcome; the shared exit path of submit/resume. */
int
reportCampaign(const service::CampaignReport &report,
               const std::string &stateDir)
{
    const service::QueueState &queue = report.queue;
    std::cerr << "campaign " << queue.campaign << ": "
              << queue.countWithStatus(service::TaskStatus::Done) << "/"
              << queue.tasks.size() << " shards done ("
              << report.cacheHits << " cached, " << report.spawned
              << " spawned, " << report.retries << " retries, "
              << report.stragglersKilled << " stragglers killed, "
              << report.escalations << " escalated)";
    // Job-granularity cache split, shown only when the job layer took
    // part (keeps pre-job-cache campaign output byte-identical).
    if (report.jobCacheHits + report.jobsComputed > 0)
        std::cerr << " [" << report.jobCacheHits << " job hits, "
                  << report.jobsComputed << " jobs computed]";
    if (report.complete) {
        std::cerr << " -> " << report.mergedPath << "\n";
        return 0;
    }
    std::cerr << "\n";
    if (report.interrupted) {
        if (report.shutdownSignal != 0) {
            // A SIGINT/SIGTERM drain: workers reaped, queue saved,
            // journal closed with shutdown + done. Conventional
            // fatal-signal exit code so wrappers see the cause.
            std::cerr << "campaign interrupted by signal "
                      << report.shutdownSignal
                      << "; continue with `lsqca resume " << stateDir
                      << "`\n";
            return 128 + report.shutdownSignal;
        }
        std::cerr << "campaign interrupted (test hook); continue with "
                     "`lsqca resume "
                  << stateDir << "`\n";
        return 3;
    }
    for (const service::ShardTask &task : queue.tasks)
        if (task.status == service::TaskStatus::Failed)
            std::cerr << "failed shard " << task.index << "/"
                      << queue.shardCount << " after " << task.attempts
                      << " attempts: " << task.lastError << "\n";
    return 1;
}

/** Unwrap a daemon response, surfacing `"ok": false` as an error. */
const Json &
requireOk(const Json &response)
{
    const Json *ok = response.find("ok");
    if (ok != nullptr && ok->asBool())
        return response;
    const Json *error = response.find("error");
    throw ConfigError("daemon refused: " +
                      (error != nullptr && error->isString()
                           ? error->asString()
                           : response.dump(0)));
}

Json
daemonRequest(const std::string &op)
{
    Json request = Json::object();
    request.set("op", op);
    request.set("proto", daemon::kProtocol);
    return request;
}

/** `lsqca submit --daemon SOCK`: hand the spec to a running daemon. */
int
cmdSubmitDaemon(int argc, char **argv)
{
    std::string specArg;
    std::string socketPath;
    std::int32_t shards = 0;
    std::int32_t weight = 1;
    std::int32_t maxAttempts = 0;
    double workerSleep = 0.0;
    bool noTiming = false;
    bool wait = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--daemon")
            socketPath = needValue(argc, argv, i);
        else if (arg == "--shards")
            shards = parseCount(needValue(argc, argv, i), "--shards",
                                1, 1 << 20);
        else if (arg == "--no-timing")
            noTiming = true;
        else if (arg == "--weight")
            weight = parseCount(needValue(argc, argv, i), "--weight",
                                1, 64);
        else if (arg == "--max-attempts")
            maxAttempts = parseCount(needValue(argc, argv, i),
                                     "--max-attempts", 1, 1000);
        else if (arg == "--wait")
            wait = true;
        else if (arg == "--test-worker-sleep")
            // Test hook: every worker sleeps before simulating, so
            // signals and drains catch the campaign mid-flight.
            workerSleep =
                parseTimeoutSeconds(needValue(argc, argv, i));
        else if (!arg.empty() && arg[0] == '-')
            badArg("submit --daemon supports --shards, --no-timing, "
                   "--weight, --max-attempts, and --wait; pool knobs "
                   "live on `lsqca serve` (got " +
                   arg + ")");
        else if (specArg.empty())
            specArg = arg;
        else
            badArg("submit takes exactly one spec");
    }
    if (specArg.empty())
        badArg("submit needs a spec file");
    LSQCA_REQUIRE(fsutil::exists(specArg),
                  "no such spec file: " + specArg);

    Json request = daemonRequest("submit");
    // The daemon resolves the spec in ITS working directory, so ship
    // an absolute path.
    request.set("spec", std::filesystem::absolute(specArg)
                            .lexically_normal()
                            .string());
    if (shards > 0)
        request.set("shards", shards);
    if (noTiming)
        request.set("no_timing", true);
    if (weight != 1)
        request.set("weight", weight);
    if (maxAttempts > 0)
        request.set("max_attempts", maxAttempts);
    if (workerSleep > 0.0) {
        Json extra = Json::array();
        extra.push(Json("--test-sleep-seconds"));
        extra.push(Json(std::to_string(workerSleep)));
        request.set("extra_worker_args", std::move(extra));
    }

    daemon::Client client(socketPath);
    const Json response = requireOk(client.call(request));
    const std::string name = response.find("campaign")->asString();
    std::cerr << "campaign " << name << " admitted ("
              << response.find("leg")->asString() << ", "
              << response.find("shards")->asInt() << " shards) -> "
              << response.find("state")->asString() << "\n";
    if (!wait)
        return 0;

    // --wait rides the watch stream: the journal replays from its
    // first line and the connection closes once the campaign leaves
    // the daemon, so the LAST `done` event (a resumed campaign's
    // journal holds one per leg) carries the verdict.
    Json watchRequest = daemonRequest("watch");
    watchRequest.set("campaign", name);
    requireOk(client.call(watchRequest));
    bool complete = false;
    std::string line;
    while (client.readLine(line)) {
        try {
            const Json event = Json::parse(line);
            const Json *kind = event.find("event");
            if (kind != nullptr && kind->isString() &&
                kind->asString() == "done") {
                const Json *field = event.find("complete");
                complete = field != nullptr && field->asBool();
            }
        } catch (const std::exception &) {
            // A torn tail can only be the stream's very end.
        }
    }
    std::cerr << "campaign " << name
              << (complete ? " completed" : " ended incomplete")
              << "\n";
    return complete ? 0 : 1;
}

int
cmdSubmit(int argc, char **argv, const char *argv0)
{
    for (int i = 2; i < argc; ++i)
        if (std::strcmp(argv[i], "--daemon") == 0)
            return cmdSubmitDaemon(argc, argv);
    std::string specArg;
    service::OrchestratorOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        bool known = false;
        readServiceFlag(arg, argc, argv, i, options, known);
        if (known)
            continue;
        if (arg == "--state")
            options.stateDir = needValue(argc, argv, i);
        else if (arg == "--shards")
            options.shards = parseCount(needValue(argc, argv, i),
                                        "--shards", 1, 1 << 20);
        else if (arg == "--no-timing")
            options.noTiming = true;
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown submit option " + arg);
        else if (specArg.empty())
            specArg = arg;
        else
            badArg("submit takes exactly one spec");
    }
    if (specArg.empty())
        badArg("submit needs a spec file");
    LSQCA_REQUIRE(specArg.size() > 5 &&
                      specArg.substr(specArg.size() - 5) == ".json",
                  "submit needs a spec *file* (workers re-load it); "
                  "dump a builtin first: lsqca spec " +
                      specArg + " > " + specArg + ".json");

    if (options.stateDir.empty())
        options.stateDir =
            "bench/service/" + SweepSpec::load(specArg).name;
    options.workerExe = proc::selfExecutable(argv0);
    // Graceful shutdown: SIGINT/SIGTERM reaps workers, saves the
    // queue, journals a shutdown event, and exits 128+signal.
    options.handleShutdown = true;
    shutdown::install();
    service::Orchestrator orchestrator(options);
    return reportCampaign(orchestrator.submit(specArg),
                          options.stateDir);
}

int
cmdResume(int argc, char **argv, const char *argv0)
{
    std::string stateDir;
    service::OrchestratorOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        bool known = false;
        readServiceFlag(arg, argc, argv, i, options, known);
        if (known)
            continue;
        if (!arg.empty() && arg[0] == '-')
            badArg("unknown resume option " + arg);
        else if (stateDir.empty())
            stateDir = arg;
        else
            badArg("resume takes exactly one state dir");
    }
    if (stateDir.empty())
        badArg("resume needs a campaign state dir");
    options.stateDir = stateDir;
    options.workerExe = proc::selfExecutable(argv0);
    options.handleShutdown = true;
    shutdown::install();
    service::Orchestrator orchestrator(options);
    return reportCampaign(orchestrator.resume(), stateDir);
}

/** `lsqca status --daemon SOCK [campaign]`: ask a running daemon. */
int
cmdStatusDaemon(const std::string &socketPath,
                const std::string &campaign)
{
    daemon::Client client(socketPath);
    Json request = daemonRequest("status");
    if (!campaign.empty())
        request.set("campaign", campaign);
    const Json response = requireOk(client.call(request));

    if (campaign.empty()) {
        TextTable table({"campaign", "active", "done", "running",
                         "pending", "failed", "shards"});
        if (const Json *rows = response.find("campaigns"))
            for (const Json &row : rows->items())
                table.addRow(
                    {row.find("campaign")->asString(),
                     row.find("active")->asBool() ? "yes" : "no",
                     std::to_string(row.find("done")->asInt()),
                     std::to_string(row.find("running")->asInt()),
                     std::to_string(row.find("pending")->asInt()),
                     std::to_string(row.find("failed")->asInt()),
                     std::to_string(row.find("shards")->asInt())});
        std::cout << table.render("daemon campaigns (" + socketPath +
                                  ")");
        const Json *draining = response.find("draining");
        if (draining != nullptr && draining->asBool())
            std::cout << "daemon is draining (new submissions are "
                         "refused)\n";
        return 0;
    }

    const service::QueueState queue =
        service::QueueState::fromJson(*response.find("queue"));
    TextTable table(
        {"shard", "status", "attempts", "cached", "wall_s", "detail"});
    for (const service::ShardTask &task : queue.tasks)
        table.addRow({std::to_string(task.index) + "/" +
                          std::to_string(queue.shardCount),
                      service::taskStatusName(task.status),
                      std::to_string(task.attempts),
                      task.cached ? "yes" : "no",
                      TextTable::num(task.wallSeconds, 3),
                      task.lastError.empty() ? task.output
                                             : task.lastError});
    std::cout << table.render("campaign " + queue.campaign + " via " +
                              socketPath);
    const Json *active = response.find("active");
    std::cout << "pending "
              << queue.countWithStatus(service::TaskStatus::Pending)
              << ", running "
              << queue.countWithStatus(service::TaskStatus::Running)
              << ", done "
              << queue.countWithStatus(service::TaskStatus::Done)
              << ", failed "
              << queue.countWithStatus(service::TaskStatus::Failed)
              << " of " << queue.shardCount << " shards ("
              << (active != nullptr && active->asBool() ? "active"
                                                        : "inactive")
              << ")\n";
    return 0;
}

int
cmdStatus(int argc, char **argv)
{
    std::string stateDir;
    std::string socketPath;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--daemon")
            socketPath = needValue(argc, argv, i);
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown status option " + arg);
        else if (stateDir.empty())
            stateDir = arg;
        else
            badArg("status takes exactly one state dir");
    }
    if (!socketPath.empty())
        return cmdStatusDaemon(socketPath, stateDir);
    if (stateDir.empty())
        badArg("status needs a campaign state dir");

    const service::QueueState queue =
        service::Orchestrator::inspect(stateDir);

    // The journal (when present) supplies liveness: the age column is
    // seconds since a running shard last produced an event — the
    // at-a-glance straggler check. Tolerates a torn tail (the
    // orchestrator may be appending right now, or died mid-line).
    bool haveJournal = false;
    service::CampaignStats stats;
    const std::string journalPath = service::Journal::pathFor(stateDir);
    if (fsutil::exists(journalPath)) {
        stats = service::CampaignStats::fromFile(journalPath);
        haveJournal = true;
    }
    const double nowWall =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    const auto ageCell = [&](const service::ShardTask &task) {
        if (!haveJournal ||
            task.status != service::TaskStatus::Running)
            return std::string("-");
        const auto wall = stats.lastWallByShard.find(task.index);
        if (wall == stats.lastWallByShard.end())
            return std::string("-"); // logical clock: no wall times
        return TextTable::num(std::max(0.0, nowWall - wall->second),
                              1);
    };

    TextTable table({"shard", "mode", "status", "attempts", "cached",
                     "wall_s", "age_s", "detail"});
    for (const service::ShardTask &task : queue.tasks) {
        const std::string detail = task.lastError.empty()
                                       ? task.output
                                       : task.lastError;
        // Derived CI-escalation tasks rerun their shard exactly
        // (docs/SAMPLING.md); base tasks with no recorded mode
        // predate the estimator and are exact by definition.
        const std::string mode =
            task.escalated ? "exact (escalated)"
                           : (task.mode.empty() ? "exact" : task.mode);
        table.addRow({std::to_string(task.index) + "/" +
                          std::to_string(queue.shardCount),
                      mode, service::taskStatusName(task.status),
                      std::to_string(task.attempts),
                      task.cached ? "yes" : "no",
                      TextTable::num(task.wallSeconds, 3),
                      ageCell(task), detail});
    }
    std::cout << table.render("campaign " + queue.campaign + " (" +
                              queue.specPath + ")");
    std::cout << "pending "
              << queue.countWithStatus(service::TaskStatus::Pending)
              << ", running "
              << queue.countWithStatus(service::TaskStatus::Running)
              << ", done "
              << queue.countWithStatus(service::TaskStatus::Done)
              << ", failed "
              << queue.countWithStatus(service::TaskStatus::Failed)
              << " of " << queue.shardCount << " shards, "
              << queue.escalationCount() << " escalated\n";
    // Job-granularity split the last cache pass recorded per task.
    // All-zero (cache off, or pure shard-level traffic) prints
    // nothing, so pre-job-cache campaigns render unchanged.
    std::int64_t jobsCached = 0;
    std::int64_t jobsComputed = 0;
    for (const service::ShardTask &task : queue.tasks) {
        jobsCached += task.jobsCached;
        jobsComputed += task.jobsComputed;
    }
    if (jobsCached + jobsComputed > 0) {
        const double total =
            static_cast<double>(jobsCached + jobsComputed);
        std::cout << "job cache: " << jobsCached << " spliced, "
                  << jobsComputed << " computed (hit rate "
                  << TextTable::num(
                         100.0 * static_cast<double>(jobsCached) /
                             total,
                         1)
                  << "%)\n";
    }
    if (haveJournal && stats.stragglersKilled > 0)
        std::cout << "warning: " << stats.stragglersKilled
                  << " straggler kill"
                  << (stats.stragglersKilled == 1 ? "" : "s")
                  << " recorded in " << journalPath
                  << " (`lsqca report " << stateDir
                  << "` for causes)\n";
    return 0;
}

int
cmdReport(int argc, char **argv)
{
    std::string stateDir;
    std::string tracePath;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--chrome-trace")
            tracePath = needValue(argc, argv, i);
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown report option " + arg);
        else if (stateDir.empty())
            stateDir = arg;
        else
            badArg("report takes exactly one state dir");
    }
    if (stateDir.empty())
        badArg("report needs a campaign state dir");

    const std::string journalPath = service::Journal::pathFor(stateDir);
    LSQCA_REQUIRE(fsutil::exists(journalPath),
                  stateDir +
                      " holds no campaign journal (events.jsonl); the "
                      "campaign predates journaling or ran with "
                      "--no-journal");
    const service::CampaignStats stats =
        service::CampaignStats::fromFile(journalPath);
    service::renderReport(stats, std::cout);
    if (!tracePath.empty()) {
        jsonl::Export trace(tracePath);
        service::writeChromeTrace(stats, trace.stream());
        trace.publish();
        if (!trace.toStdout())
            std::cerr << "chrome trace: " << stats.spans.size()
                      << " spans -> " << tracePath
                      << " (load in chrome://tracing or Perfetto)\n";
    }
    return 0;
}

int
cmdServe(int argc, char **argv, const char *argv0)
{
    daemon::DaemonOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workers")
            options.workers = parseCount(needValue(argc, argv, i),
                                         "--workers", 1, 1024);
        else if (arg == "--socket")
            options.socketPath = needValue(argc, argv, i);
        else if (arg == "--cache")
            options.cacheDir = needValue(argc, argv, i);
        else if (arg == "--threads")
            options.threadsPerWorker =
                parseThreadCount(needValue(argc, argv, i));
        else if (arg == "--timeout-seconds")
            options.timeoutSeconds =
                parseTimeoutSeconds(needValue(argc, argv, i));
        else if (arg == "--straggler-factor")
            options.stragglerFactor =
                parseStragglerFactor(needValue(argc, argv, i));
        else if (arg == "--max-attempts")
            options.maxAttempts = parseCount(needValue(argc, argv, i),
                                             "--max-attempts", 1,
                                             1000);
        else if (arg == "--poll-seconds")
            options.pollSeconds =
                parseTimeoutSeconds(needValue(argc, argv, i));
        else if (arg == "--clock")
            options.clock = service::journalClockFromName(
                needValue(argc, argv, i));
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown serve option " + arg);
        else if (options.root.empty())
            options.root = arg;
        else
            badArg("serve takes exactly one root dir");
    }
    if (options.root.empty())
        badArg("serve needs a daemon root dir");
    options.workerExe = proc::selfExecutable(argv0);
    daemon::Daemon server(std::move(options));
    std::cerr << "lsqca serve: listening on " << server.socketPath()
              << " (stop with SIGTERM, or `lsqca drain --daemon "
              << server.socketPath() << "`)\n";
    return server.run();
}

int
cmdWatch(int argc, char **argv)
{
    std::string campaign;
    std::string socketPath;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--daemon")
            socketPath = needValue(argc, argv, i);
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown watch option " + arg);
        else if (campaign.empty())
            campaign = arg;
        else
            badArg("watch takes exactly one campaign name");
    }
    if (campaign.empty())
        badArg("watch needs a campaign name");
    if (socketPath.empty())
        badArg("watch needs --daemon <socket>");

    daemon::Client client(socketPath);
    Json request = daemonRequest("watch");
    request.set("campaign", campaign);
    requireOk(client.call(request));
    // lsqca-events-v1 lines, verbatim; the daemon closes the stream
    // once the campaign is inactive and fully forwarded.
    std::string line;
    while (client.readLine(line))
        std::cout << line << "\n";
    return 0;
}

int
cmdCancel(int argc, char **argv)
{
    std::string campaign;
    std::string socketPath;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--daemon")
            socketPath = needValue(argc, argv, i);
        else if (!arg.empty() && arg[0] == '-')
            badArg("unknown cancel option " + arg);
        else if (campaign.empty())
            campaign = arg;
        else
            badArg("cancel takes exactly one campaign name");
    }
    if (campaign.empty())
        badArg("cancel needs a campaign name");
    if (socketPath.empty())
        badArg("cancel needs --daemon <socket>");

    daemon::Client client(socketPath);
    Json request = daemonRequest("cancel");
    request.set("campaign", campaign);
    requireOk(client.call(request));
    std::cerr << "campaign " << campaign
              << " cancelled (queue left resumable)\n";
    return 0;
}

int
cmdDrain(int argc, char **argv)
{
    std::string socketPath;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--daemon")
            socketPath = needValue(argc, argv, i);
        else
            badArg("unknown drain option " + arg);
    }
    if (socketPath.empty())
        badArg("drain needs --daemon <socket>");

    daemon::Client client(socketPath);
    const Json response = requireOk(client.call(daemonRequest("drain")));
    std::cerr << "daemon draining: "
              << response.find("active")->asInt()
              << " active campaign(s) will finish, then the daemon "
                 "exits\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "--help" || command == "-h" || command == "help")
        return usage(std::cout, 0);
    try {
        if (command == "trace")
            return cmdTrace(argc, argv);
        if (command == "run")
            return cmdRun(argc, argv);
        if (command == "expand")
            return cmdExpand(argc, argv);
        if (command == "list")
            return cmdList();
        if (command == "merge")
            return cmdMerge(argc, argv);
        if (command == "spec")
            return cmdSpec(argc, argv);
        if (command == "submit")
            return cmdSubmit(argc, argv, argv[0]);
        if (command == "status")
            return cmdStatus(argc, argv);
        if (command == "report")
            return cmdReport(argc, argv);
        if (command == "resume")
            return cmdResume(argc, argv, argv[0]);
        if (command == "serve")
            return cmdServe(argc, argv, argv[0]);
        if (command == "watch")
            return cmdWatch(argc, argv);
        if (command == "cancel")
            return cmdCancel(argc, argv);
        if (command == "drain")
            return cmdDrain(argc, argv);
        std::cerr << "lsqca: unknown command \"" << command << "\"\n";
        return usage(std::cerr, 2);
    } catch (const std::exception &e) {
        std::cerr << "lsqca: " << e.what() << "\n";
        return 1;
    }
}
