#!/usr/bin/env python3
"""Check a sampled BENCH run against its exact twin (docs/SAMPLING.md).

The sampling CI gate runs the fig14 sweep twice — once exact, once
under the sampled estimator — and then asserts the statistical
contract the estimator documents:

  * entries the estimator covered wholesale (no cpi_ci95 key) must
    match the exact run bit for bit: they took the same code path and
    any drift is a correctness bug;
  * for estimated entries, the exact cpi must lie inside the reported
    95% interval for at least --coverage of them (default 0.95 — the
    interval is a per-entry 95% CI, so demanding literally 100% would
    reject a correct estimator);
  * no estimated entry may miss by more than --max-ci-widths interval
    half-widths (default 1.5): the simulator is deterministic, so this
    bound is stable run to run and catches gross estimator bias that
    per-entry coverage would average away.

Exit status 0 = contract holds.

Usage:
  tools/sampling_check.py BENCH_fig14.json BENCH_fig14_sampled.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    entries = {}
    for entry in doc.get("entries", []):
        if "name" not in entry or "metrics" not in entry:
            sys.exit(f"sampling_check: {path}: malformed entry "
                     f"(not a lsqca-bench document?)")
        entries[entry["name"]] = entry["metrics"]
    return entries


def main():
    parser = argparse.ArgumentParser(
        description="check sampled-estimator CI containment")
    parser.add_argument("exact", help="BENCH json from the exact run")
    parser.add_argument("sampled", help="BENCH json from the sampled run")
    parser.add_argument(
        "--coverage", type=float, default=0.95,
        help="minimum fraction of estimated entries whose 95%% CI "
             "must contain the exact cpi (default 0.95)")
    parser.add_argument(
        "--max-ci-widths", type=float, default=1.5,
        help="no entry may miss the exact cpi by more than this many "
             "CI half-widths (default 1.5)")
    args = parser.parse_args()

    exact = load(args.exact)
    sampled = load(args.sampled)

    if set(exact) != set(sampled):
        only_e = sorted(set(exact) - set(sampled))[:5]
        only_s = sorted(set(sampled) - set(exact))[:5]
        sys.exit("sampling_check: entry sets differ "
                 f"(exact-only {only_e}, sampled-only {only_s})")

    failures = []
    estimated = inside = 0
    worst = (0.0, None)
    for name, s_metrics in sorted(sampled.items()):
        e_cpi = exact[name]["cpi"]
        s_cpi = s_metrics["cpi"]
        ci = s_metrics.get("cpi_ci95")
        if ci is None:
            # Whole-stream coverage: must be the exact result.
            if s_cpi != e_cpi:
                failures.append(
                    f"{name}: non-estimated entry differs from exact "
                    f"(exact={e_cpi!r} sampled={s_cpi!r})")
            continue
        estimated += 1
        distance = abs(e_cpi - s_cpi)
        if distance <= ci:
            inside += 1
        widths = distance / ci if ci > 0 else float("inf")
        if widths > worst[0]:
            worst = (widths, name)
        if widths > args.max_ci_widths:
            failures.append(
                f"{name}: exact cpi {e_cpi:.6g} misses the sampled "
                f"interval {s_cpi:.6g} ± {ci:.6g} by {widths:.2f} "
                f"half-widths (> {args.max_ci_widths})")

    if estimated:
        coverage = inside / estimated
        print(f"sampling_check: {len(sampled)} entries, {estimated} "
              f"estimated, CI coverage {coverage:.3f} "
              f"(min {args.coverage}), worst miss "
              f"{worst[0]:.2f} half-widths ({worst[1]})")
        if coverage < args.coverage:
            failures.append(
                f"CI coverage {coverage:.3f} below required "
                f"{args.coverage} ({inside}/{estimated} inside)")
    else:
        print(f"sampling_check: {len(sampled)} entries, none "
              f"estimated (exact coverage everywhere)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
