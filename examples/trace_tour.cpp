/**
 * @file
 * Telemetry tour: the SimObserver API on the paper's SELECT-Heisenberg
 * workload (docs/OBSERVERS.md).
 *
 *   1. Attach StallAttribution to see *why* each machine's CPI is what
 *      it is — per-opcode beats split into compute vs. each
 *      memory-motion component vs. magic stall (the Sec. VI latency
 *      story, live).
 *   2. Attach BankHeatmap to watch the SAM cells themselves: the
 *      locality-aware store keeps the hot working set port-adjacent,
 *      and the makeRoomAt hole walk's churn shows up as touch counts.
 *   3. Attach Timeline for the tail of the issue stream — the raw
 *      records `lsqca trace` exports as JSONL.
 *
 * Build & run:  ./build/trace_tour [lattice-width]   (default 6)
 */

#include <cstdlib>
#include <iostream>

#include "circuit/lowering.h"
#include "common/table.h"
#include "sim/collectors/bank_heatmap.h"
#include "sim/collectors/stall_attribution.h"
#include "sim/collectors/timeline.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const std::int32_t width = argc > 1 ? std::atoi(argv[1]) : 6;

    SelectParams params;
    params.width = width;
    const Program program =
        translate(lowerToCliffordT(makeSelect(params)));
    std::cout << "SELECT for the " << width << "x" << width
              << " Heisenberg model: " << program.numVariables()
              << " qubits, " << program.size() << " instructions\n";

    for (const SamKind sam : {SamKind::Point, SamKind::Line}) {
        SimOptions opts;
        opts.arch.sam = sam;
        if (sam == SamKind::Line)
            opts.arch.banks = 2;

        collectors::StallAttribution stalls;
        collectors::BankHeatmap heatmap;
        collectors::Timeline timeline(5);
        opts.observers = {&stalls, &heatmap, &timeline};
        const SimResult r = simulate(program, opts);

        std::cout << "\n"
                  << stalls.table().render(
                         std::string(opts.arch.label()) + ": CPI " +
                         TextTable::num(r.cpi, 3) + ", " +
                         std::to_string(r.execBeats) +
                         " beats — where they went");
        for (std::size_t b = 0; b < heatmap.banks().size(); ++b)
            std::cout << "\n"
                      << heatmap.table(b).render(
                             std::string(opts.arch.label()) + " bank " +
                             std::to_string(b) +
                             " heat (occupancy share, touches)");

        std::cout << "\nlast issue records (Timeline ring):\n";
        for (const InstructionEvent &event : timeline.records())
            std::cout << "  #" << event.index << "  "
                      << event.inst.str() << "  [" << event.start
                      << ", " << event.end << ")\n";
    }

    std::cout << "\nThe same telemetry is available without writing "
                 "C++: `lsqca trace <spec.json>` runs one job of any "
                 "sweep spec with these collectors attached and "
                 "exports the full event stream as JSONL "
                 "(docs/OBSERVERS.md).\n";
    return 0;
}
