/**
 * @file
 * The paper's headline scenario (Sec. VI-B): the 400-qubit multiplier
 * under a resource-restricted machine (one magic-state factory).
 * Line SAM reaches ~87% memory density -- versus 50% for the
 * conventional floorplan -- while the magic-state bottleneck conceals
 * most of the load/store latency.
 *
 * Usage: multiplier_demo [prefix-instructions]   (default 120000)
 */

#include <cstdlib>
#include <iostream>

#include "circuit/lowering.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const std::int64_t prefix =
        argc > 1 ? std::atoll(argv[1]) : 120'000;

    std::cout << "Synthesizing the 400-qubit multiplier (81x78 bits)...\n";
    const Circuit circuit = makeMultiplier();
    const Circuit lowered = lowerToCliffordT(circuit);
    const Program program = translate(lowered);
    std::cout << "  " << circuit.numQubits() << " logical qubits, "
              << program.size() << " LSQCA instructions, "
              << program.magicCount() << " magic states\n\n";

    TextTable table({"machine", "exec [beats]", "CPI", "density",
                     "overhead", "magic stall [beats]"});
    const SimResult conv = simulateConventional(
        program, {.maxInstructions = prefix});
    auto addRow = [&](const std::string &name, const SimResult &r) {
        table.addRow({name, std::to_string(r.execBeats),
                      TextTable::num(r.cpi, 2),
                      TextTable::num(r.density(), 3),
                      TextTable::num(static_cast<double>(r.execBeats) /
                                         static_cast<double>(
                                             conv.execBeats),
                                     3),
                      std::to_string(r.magicStallBeats)});
    };
    addRow("conventional (1/2 density)", conv);
    for (const auto &[name, sam, banks] :
         {std::tuple<const char *, SamKind, int>{"point SAM, 1 bank",
                                                 SamKind::Point, 1},
          {"point SAM, 2 banks", SamKind::Point, 2},
          {"line SAM, 1 bank", SamKind::Line, 1},
          {"line SAM, 4 banks", SamKind::Line, 4}}) {
        SimOptions opts;
        opts.arch.sam = sam;
        opts.arch.banks = banks;
        opts.maxInstructions = prefix;
        addRow(name, simulate(program, opts));
    }
    std::cout << table.render(
        "multiplier, factory count 1, steady-state prefix of " +
        std::to_string(prefix) + " instructions");
    std::cout << "\nPaper reference: line SAM ~87% density at ~6% "
                 "overhead (Sec. VI-B).\n";
    return 0;
}
