/**
 * @file
 * A guided tour of the LSQCA ISA (Table I): shows how each gate of a
 * small teleportation-flavored circuit lowers to instructions, then
 * disassembles the full program and prints per-opcode statistics from a
 * simulation.
 */

#include <iostream>

#include "circuit/circuit.h"
#include "circuit/lowering.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "translate/translate.h"

int
main()
{
    using namespace lsqca;

    // A small circuit touching every translation rule: Clifford 1q,
    // T gadget, optimized CX/CZ, AND compute/uncompute, measurement.
    Circuit circ;
    circ.addRegister("q", 4);
    circ.h(0);
    circ.s(1);
    circ.t(2);
    circ.cx(0, 1);
    circ.cz(1, 2);
    circ.andInit(0, 1, 3);
    circ.andUncompute(0, 1, 3);
    circ.x(2); // Pauli: absorbed into the frame, emits nothing
    circ.measZ(2);

    const Circuit lowered = lowerToCliffordT(circ);
    const Program program = translate(lowered);

    std::cout << "gate-level size " << circ.size() << " -> Clifford+T "
              << lowered.size() << " -> LSQCA instructions "
              << program.size() << " (counted "
              << program.countedInstructions() << ", magic "
              << program.magicCount() << ")\n\n";
    std::cout << program.disassemble() << "\n";

    SimOptions opts;
    opts.arch.sam = SamKind::Point;
    const SimResult r = simulate(program, opts);

    TextTable table({"opcode", "class latency", "count",
                     "occupied beats"});
    for (int i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        if (r.opcodeCount[static_cast<std::size_t>(i)] == 0)
            continue;
        const OpcodeInfo &info = opcodeInfo(op);
        table.addRow(
            {info.mnemonic,
             info.latency == kVariableLatency
                 ? "variable"
                 : std::to_string(info.latency),
             std::to_string(r.opcodeCount[static_cast<std::size_t>(i)]),
             std::to_string(
                 r.opcodeBeats[static_cast<std::size_t>(i)])});
    }
    std::cout << table.render("per-opcode execution statistics "
                              "(point-SAM, 1 factory)")
              << "\ntotal: " << r.execBeats << " beats, CPI " << r.cpi
              << "\n";
    return 0;
}
