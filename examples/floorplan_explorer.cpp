/**
 * @file
 * Design-space explorer: sweeps SAM kind, bank count, factory count and
 * hybrid ratio for one benchmark and prints the density/overhead
 * frontier — the workflow an architect would use to size a machine for
 * a target workload (Sec. IV-D).
 *
 * Usage: floorplan_explorer [benchmark] [prefix]
 *   benchmark in {adder, bv, cat, ghz, multiplier, square_root, select}
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "circuit/lowering.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

namespace {

lsqca::Circuit
pick(const std::string &name)
{
    using namespace lsqca;
    if (name == "adder")
        return makeAdder();
    if (name == "bv")
        return makeBernsteinVazirani();
    if (name == "cat")
        return makeCat();
    if (name == "ghz")
        return makeGhz();
    if (name == "multiplier")
        return makeMultiplier();
    if (name == "square_root")
        return makeSquareRoot();
    if (name == "select")
        return makeSelect({11, 0});
    throw ConfigError("unknown benchmark: " + name);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const std::string name = argc > 1 ? argv[1] : "multiplier";
    const std::int64_t prefix =
        argc > 2 ? std::atoll(argv[2]) : 60'000;

    const Program program = translate(lowerToCliffordT(pick(name)));
    std::cout << "exploring " << name << ": " << program.numVariables()
              << " qubits, " << program.size() << " instructions\n\n";

    for (std::int32_t factories : {1, 2, 4}) {
        const SimResult conv = simulateConventional(
            program, {.factories = factories, .maxInstructions = prefix});
        TextTable table({"config", "density", "overhead",
                         "memory beats", "magic stall"});
        for (const auto &[label, sam, banks] :
             {std::tuple<const char *, SamKind, int>{"point#1",
                                                     SamKind::Point, 1},
              {"point#2", SamKind::Point, 2},
              {"line#1", SamKind::Line, 1},
              {"line#2", SamKind::Line, 2},
              {"line#4", SamKind::Line, 4}}) {
            for (double f : {0.0, 0.25, 0.5}) {
                SimOptions opts;
                opts.arch.sam = sam;
                opts.arch.banks = banks;
                opts.arch.factories = factories;
                opts.arch.hybridFraction = f;
                opts.maxInstructions = prefix;
                const SimResult r = simulate(program, opts);
                table.addRow(
                    {std::string(label) +
                         (f > 0 ? " f=" + TextTable::num(f, 2) : ""),
                     TextTable::num(r.density(), 3),
                     TextTable::num(static_cast<double>(r.execBeats) /
                                        static_cast<double>(
                                            conv.execBeats),
                                    3),
                     std::to_string(r.memoryBeats),
                     std::to_string(r.magicStallBeats)});
            }
        }
        std::cout << table.render("factory count " +
                                  std::to_string(factories))
                  << "\n";
    }
    return 0;
}
