/**
 * @file
 * Quickstart: the whole LSQCA pipeline in one page.
 *
 *   1. Build a logical circuit with the IR.
 *   2. Lower it to Clifford+T.
 *   3. Translate to the LSQCA instruction set (Table I).
 *   4. Simulate it code-beat-accurately on a point-SAM machine and on
 *      the conventional 50%-density baseline, with a StallAttribution
 *      collector attached so the point-SAM overhead explains itself
 *      (deeper telemetry tour: examples/trace_tour.cpp and
 *      docs/OBSERVERS.md).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "circuit/circuit.h"
#include "circuit/lowering.h"
#include "sim/collectors/stall_attribution.h"
#include "sim/simulator.h"
#include "translate/translate.h"

int
main()
{
    using namespace lsqca;

    // 1. A toy program: entangle two registers and inject one T gate.
    Circuit circ;
    const QubitId data = circ.addRegister("data", 8);
    const QubitId anc = circ.addRegister("ancilla", 1);
    circ.h(data);
    for (QubitId q = data; q + 1 < data + 8; ++q)
        circ.cx(q, q + 1);
    circ.t(anc);
    circ.cx(anc, data);
    circ.measZ(anc);

    // 2./3. Lower and translate. The Program references variables, CR
    // slots and classical values only -- no cell coordinates -- so the
    // same object code runs on every SAM instance.
    const Circuit lowered = lowerToCliffordT(circ);
    const Program program = translate(lowered);
    std::cout << "== LSQCA object code ==\n"
              << program.disassemble(16) << "\n";

    // 4. Simulate on a point-SAM machine with one magic-state factory.
    //    Telemetry is pluggable: any SimObserver attached to the
    //    options sees the instruction stream; here StallAttribution
    //    explains where the point-SAM beats go (no more hand-rolled
    //    trace printing — collectors do it).
    SimOptions lsqca_opts;
    lsqca_opts.arch.sam = SamKind::Point;
    lsqca_opts.arch.factories = 1;
    collectors::StallAttribution stalls;
    lsqca_opts.observers = {&stalls};
    const SimResult on_sam = simulate(program, lsqca_opts);

    const SimResult on_conv = simulateConventional(program);

    std::cout << "== results ==\n";
    std::cout << "point-SAM : " << on_sam.execBeats << " beats, CPI "
              << on_sam.cpi << ", density " << on_sam.density() << "\n";
    std::cout << "convention: " << on_conv.execBeats << " beats, CPI "
              << on_conv.cpi << ", density " << on_conv.density()
              << "\n";
    std::cout << "overhead  : "
              << static_cast<double>(on_sam.execBeats) /
                     static_cast<double>(on_conv.execBeats)
              << "x execution time for "
              << on_sam.density() / on_conv.density()
              << "x memory density\n\n";

    const LatencySplit total = stalls.totals();
    std::cout << "where the point-SAM beats went: "
              << total.motionBeats() << " memory motion ("
              << total.seek << " seek, " << total.pick << " pick, "
              << total.load << " load, " << total.store << " store), "
              << total.surgery << " surgery, " << total.compute
              << " compute, " << total.magicStall << " magic stall\n";
    return 0;
}
