/**
 * @file
 * SELECT-circuit study for 2-D Heisenberg models (the paper's primary
 * quantum-simulation workload): synthesizes SELECT for a given lattice
 * width, reports the register access-locality analysis of Sec. III-B,
 * then compares pure-SAM and hybrid floorplans (control+temporal pinned
 * conventionally) as in Sec. VI-C.
 *
 * Usage: select_heisenberg [lattice-width]   (default 11 -> 143 qubits)
 */

#include <cstdlib>
#include <iostream>

#include "analysis/trace_analysis.h"
#include "circuit/lowering.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "synth/benchmarks.h"
#include "translate/translate.h"

int
main(int argc, char **argv)
{
    using namespace lsqca;
    const std::int32_t width =
        argc > 1 ? std::atoi(argv[1]) : 11;

    const SelectLayout layout = selectLayout(width);
    std::cout << "SELECT for the " << width << "x" << width
              << " Heisenberg model: " << layout.numTerms << " terms, "
              << layout.totalQubits << " qubits (control "
              << layout.controlBits << ", temporal "
              << layout.temporalBits << ", system " << layout.systemBits
              << ")\n\n";

    SelectParams params;
    params.width = width;
    params.maxTerms = std::min<std::int64_t>(layout.numTerms, 2000);
    const Program program =
        translate(lowerToCliffordT(makeSelect(params)));

    // Sec. III-B locality analysis under ideal conditions.
    SimOptions ideal;
    ideal.arch.sam = SamKind::Conventional;
    ideal.arch.instantMagic = true;
    ideal.recordTrace = true;
    const SimResult trace = simulate(program, ideal);
    const TraceAnalysis analysis(program, trace);

    TextTable locality({"register", "references", "median period",
                        "p99 period"});
    for (const auto &group : analysis.groups()) {
        const bool has = group.periods.count() > 0;
        locality.addRow(
            {group.name, std::to_string(group.references),
             has ? TextTable::num(group.periods.quantile(0.5), 1) : "-",
             has ? TextTable::num(group.periods.quantile(0.99), 1)
                 : "-"});
    }
    std::cout << locality.render("memory reference locality (Fig. 8a/8b)")
              << "\nmagic demand: one state per "
              << analysis.magicDemandInterval()
              << " beats | sequential-access fraction: "
              << analysis.sequentialFraction() << "\n\n";

    // Architecture comparison, factory count 1.
    const SimResult conv = simulateConventional(program);
    const double hot = static_cast<double>(layout.controlBits +
                                           layout.temporalBits) /
                       static_cast<double>(layout.totalQubits);
    TextTable archs({"machine", "density", "overhead"});
    auto addRow = [&](const std::string &name, SamKind sam, int banks,
                      double f) {
        SimOptions opts;
        opts.arch.sam = sam;
        opts.arch.banks = banks;
        opts.arch.hybridFraction = f;
        const SimResult r = simulate(program, opts);
        archs.addRow({name, TextTable::num(r.density(), 3),
                      TextTable::num(static_cast<double>(r.execBeats) /
                                         static_cast<double>(
                                             conv.execBeats),
                                     3)});
    };
    addRow("point#1", SamKind::Point, 1, 0.0);
    addRow("line#1", SamKind::Line, 1, 0.0);
    addRow("line#4", SamKind::Line, 4, 0.0);
    addRow("hybrid point#1 (ctrl+temp conv)", SamKind::Point, 1, hot);
    addRow("hybrid line#1 (ctrl+temp conv)", SamKind::Line, 1, hot);
    archs.addRow({"conventional", "0.500", "1.000"});
    std::cout << archs.render("architecture comparison, 1 factory");
    std::cout << "\nPaper reference: hybrid layouts keep ~92-94% density "
                 "at ~6-7% overhead (Sec. VI-C, Fig. 15).\n";
    return 0;
}
